//! Fig 6: index sizes vs datasets.
//!
//! G-Grid (CPU) = graph grid + object table + message lists; G-Grid (GPU)
//! = the grid mirror on the device; G-Grid (Total) their sum; V-Tree =
//! precomputed matrices + skeleton + object lists. The paper's headline:
//! G-Grid's total is far below V-Tree's because the grid stores only the
//! original data while V-Tree precomputes pairwise distances.

use crate::csvout::{fmt_bytes, ResultTable};
use crate::datasets::{build_dataset, DatasetSpec};
use crate::experiments::ExpConfig;
use crate::runner::{build_index, IndexKind};

pub fn run(cfg: &ExpConfig) -> ResultTable {
    let mut t = ResultTable::new(
        "Fig 6: index size vs datasets",
        &[
            "Dataset",
            "G-Grid (CPU)",
            "G-Grid (GPU)",
            "G-Grid (Total)",
            "V-Tree",
        ],
    );
    let params = cfg.index_params();
    for ds in cfg.datasets() {
        let graph = build_dataset(&DatasetSpec::new(ds, cfg.scale));
        let ggrid = build_index(IndexKind::GGrid, &graph, &params).unwrap();
        let vtree = build_index(IndexKind::VTree, &graph, &params).unwrap();
        let gs = ggrid.index_size();
        let vs = vtree.index_size();
        t.row(vec![
            ds.name().to_string(),
            fmt_bytes(gs.cpu_bytes),
            fmt_bytes(gs.gpu_bytes),
            fmt_bytes(gs.total()),
            fmt_bytes(vs.total()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vtree_larger_than_ggrid() {
        // Needs a realistically sized graph: on toy graphs the grid's
        // fixed 128-byte cell padding dominates, while at scale V-Tree's
        // quadratic leaf matrices do — the paper's regime.
        let cfg = ExpConfig {
            scale: 500,
            ..ExpConfig::quick()
        };
        let params = cfg.index_params();
        let graph = build_dataset(&DatasetSpec::new(roadnet::gen::Dataset::NY, cfg.scale));
        let ggrid = build_index(IndexKind::GGrid, &graph, &params).unwrap();
        let vtree = build_index(IndexKind::VTree, &graph, &params).unwrap();
        assert!(
            vtree.index_size().total() > ggrid.index_size().total(),
            "paper Fig 6 shape: V-Tree must be larger"
        );
    }

    #[test]
    fn table_shape() {
        let cfg = ExpConfig {
            scale: 4000,
            ..ExpConfig::quick()
        };
        let t = run(&cfg);
        assert_eq!(t.rows.len(), cfg.datasets().len());
        assert_eq!(t.headers.len(), 5);
    }
}
