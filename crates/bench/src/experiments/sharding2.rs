//! Extension study: cooperative multi-device execution (cross-shard SDist
//! plus read-hot cell replication) on top of the routed sharding of the
//! `sharding` experiment.
//!
//! Three feature arms replay identical scripted streams at each
//! `D ∈ {1, 2, 4, 8}` (the busy-time rebalancer runs once per epoch in
//! every arm, so migration is always available):
//!
//! * **baseline** — routed cleaning only: every query's SDist runs whole
//!   on its primary shard (the previous sharded-serving behaviour);
//! * **coop** — `cross_shard_sdist`: a query ring spanning several shards
//!   scatters its relaxation across the owning devices and the round
//!   costs the *max* over owners instead of their sum;
//! * **coop_repl** — additionally `replicate_threshold`: read-hot remote
//!   cells are promoted onto reader devices, folding their relax work
//!   back into the reader's primary and spreading hot-cell load over the
//!   readers instead of funnelling it to the one owner.
//!
//! Three movement patterns pick the regimes apart:
//!
//! * **uniform** — updates and queries network-wide (control);
//! * **widering** — a sparse, slowly-moving fleet and a pinned query
//!   window: every query expands a wide candidate ring from the same
//!   primary shard, the showcase for cooperative SDist (baseline funnels
//!   all relaxation to that one device);
//! * **readhot** — the whole fleet lives in a fixed hot window of cells
//!   and barely moves (a small trickle of in-window updates keeps the
//!   dirtied-cell stream honest) while queries arrive network-wide: with
//!   cooperative SDist alone every query ships a scattered leg to the hot
//!   cells' one owner, and replication is what folds that work back onto
//!   the reader devices.
//!
//! Every run replays the same stream in a cold-topology regime: device
//! topology caches are flushed once per epoch (the churn regime of the
//! capacity study), so per-ring staging recurs and is paid by whichever
//! device runs the relaxation over the staged cells.
//!
//! Every run's per-epoch fused-batch answers are asserted byte-identical
//! to the `D = 1` reference — the cooperative paths move modeled cost,
//! never answers. Headlines in `BENCH_10.json`:
//!
//! * `cross_shard_critical_cut` — fraction of the widering critical path
//!   `T(4)` that the coop arm cuts off the baseline arm;
//! * `replication_skew_recovery` — fraction of the readhot skew penalty
//!   (the busiest device's serving busy beyond the perfect-balance share
//!   `total/D`, at D = 4 under migration-only coop) that the replication
//!   arm wins back.

use std::path::Path;
use std::sync::Arc;

use ggrid::grid::GraphGrid;
use ggrid::prelude::*;
use roadnet::EdgeId;
use workload::CellWindowSampler;

use crate::csvout::{fmt_ns, ResultTable};
use crate::datasets::{build_dataset, DatasetSpec};
use crate::experiments::ExpConfig;
use crate::runner::BenchWorld;

const K: usize = 16;
const DEVICE_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// (name, cross_shard_sdist, replication)
const ARMS: [(&str, bool, bool); 3] = [
    ("baseline", false, false),
    ("coop", true, false),
    ("coop_repl", true, true),
];

type Wave = Vec<(ObjectId, EdgePosition, Timestamp)>;
type QueryBatch = Vec<(EdgePosition, usize)>;
type EpochAnswers = Vec<Vec<Vec<(ObjectId, Distance)>>>;

struct RunResult {
    variant: &'static str,
    arm: &'static str,
    devices: usize,
    /// `T(D)`: Σ over epochs of the busiest shard's busy delta.
    critical_ns: u64,
    /// Busy time summed over devices across the serving epochs (the seed
    /// ingest/clean, identical in every arm, is excluded).
    total_busy_ns: u64,
    max_busy_share: f64,
    /// Imbalance: busiest device's serving busy minus the perfect-balance
    /// share `total / D` — the busy time a hotspot adds to the critical
    /// path beyond what the workload costs under even spread.
    skew_ns: u64,
    cross_shard_rounds: u64,
    replica_hits: u64,
    replica_invalidations: u64,
    replicas_active: u64,
    cells_migrated: u64,
    answers: EpochAnswers,
}

struct Script {
    seed_wave: Wave,
    epochs: Vec<(Wave, QueryBatch)>,
}

pub fn run(cfg: &ExpConfig) -> ResultTable {
    let ds = roadnet::gen::Dataset::NY;
    let world = BenchWorld::new(build_dataset(&DatasetSpec::new(ds, cfg.scale)));
    let base = cfg.index_params().ggrid;
    let grid = world.grid(base.cell_capacity, base.vertex_capacity);

    let objects = cfg.objects.max(512);
    let epochs = if cfg.quick { 4 } else { 8 };
    let queries = cfg.queries.max(8);

    let mut outcomes: Vec<RunResult> = Vec::new();
    for &variant in &["uniform", "widering", "readhot"] {
        // readhot is the read-amplification regime: double the reader batch
        // so the per-read folding replication buys dominates the fixed
        // once-per-epoch promotion/invalidation churn it pays for.
        let q = if variant == "readhot" {
            queries * 2
        } else {
            queries
        };
        let script = build_script(&grid, cfg, variant, objects, epochs, q);
        let mut reference_answers: Option<EpochAnswers> = None;
        for &d in &DEVICE_COUNTS {
            for &(arm, cross, repl) in &ARMS {
                if d == 1 && arm != "baseline" {
                    continue; // the gates only act when there are shards
                }
                let r = run_stream(&grid, &base, variant, arm, d, cross, repl, &script);
                match &reference_answers {
                    None => reference_answers = Some(r.answers.clone()),
                    Some(want) => assert_eq!(
                        &r.answers, want,
                        "{variant}: answers diverged from D=1 at D={d} arm={arm}"
                    ),
                }
                outcomes.push(r);
            }
        }
    }

    let mut t = ResultTable::new(
        &format!(
            "Extension: cooperative multi-device execution ({}, {} objects, {} epochs, {} queries/epoch, k={K})",
            ds.name(),
            objects,
            epochs,
            queries
        ),
        &[
            "Movement",
            "Arm",
            "D",
            "T(D)",
            "Max share",
            "Skew",
            "Coop rounds",
            "Replica hits",
            "Invalidations",
            "Migrated",
        ],
    );
    for o in &outcomes {
        t.row(vec![
            o.variant.to_string(),
            o.arm.to_string(),
            o.devices.to_string(),
            fmt_ns(o.critical_ns),
            format!("{:.0}%", 100.0 * o.max_busy_share),
            fmt_ns(o.skew_ns),
            o.cross_shard_rounds.to_string(),
            o.replica_hits.to_string(),
            o.replica_invalidations.to_string(),
            o.cells_migrated.to_string(),
        ]);
    }

    if let Err(e) = write_bench_json(&cfg.out_dir, cfg, objects, epochs, queries, &outcomes) {
        eprintln!("warning: failed to write BENCH_10.json: {e}");
    }
    t
}

/// A z-order cell window starting at `lo`, widened until it owns edges.
fn edge_window(grid: &GraphGrid, lo: u32, start_width: u32) -> std::ops::Range<u32> {
    let num_cells = grid.num_cells() as u32;
    let mut w = start_width.max(1);
    loop {
        let hi = (lo + w).min(num_cells);
        let has_edges = (0..grid.graph().num_edges() as u32)
            .map(EdgeId)
            .any(|e| (lo..hi).contains(&(grid.cell_of_edge(e).index() as u32)));
        if has_edges || hi == num_cells {
            break lo..hi;
        }
        w *= 2;
    }
}

/// Deterministic per-epoch waves and query batches for one variant.
fn build_script(
    grid: &Arc<GraphGrid>,
    cfg: &ExpConfig,
    variant: &str,
    objects: usize,
    epochs: usize,
    queries: usize,
) -> Script {
    let num_cells = grid.num_cells() as u32;
    let mut uniform = CellWindowSampler::whole_grid(grid, cfg.seed ^ 0x51A);

    // readhot: a deliberately narrow hot window in the *interior* of one
    // shard at every swept D (9/16 of the z space avoids the D ∈ {2,4,8}
    // boundaries) — the whole fleet packs into a few dense cells with one
    // unambiguous owner. widering: queries come from a window pressed
    // against the z = 1/2 boundary from below, so every query has a single
    // primary but its candidate ring immediately spills across the
    // boundary into the neighbouring shards (z-order locality would keep a
    // mid-shard window's rings home-owned).
    let hot = edge_window(grid, num_cells / 16 * 9, (num_cells / 256).max(1));
    let pinned_w = (num_cells / 32).max(1);
    let pinned = edge_window(grid, num_cells / 2 - pinned_w.min(num_cells / 2), pinned_w);
    let mut hot_sampler = CellWindowSampler::new(grid, hot, cfg.seed ^ 0x7D7);
    let mut pinned_sampler = CellWindowSampler::new(grid, pinned, cfg.seed ^ 0x3B3);

    // readhot queries are stratified over eight equal z-slices (aligned
    // with the shard boundaries of every swept D), so the reader load is
    // spread evenly over primaries and the only busy-time imbalance left
    // is the one the hot cells' owner carries — the signal the skew
    // headline isolates.
    let slice = (num_cells / 8).max(1);
    let mut strata: Vec<CellWindowSampler> = (0..8u32)
        .map(|i| {
            let lo = (i * slice).min(num_cells.saturating_sub(1));
            CellWindowSampler::new(
                grid,
                edge_window(grid, lo, slice),
                cfg.seed ^ (0xA11 + u64::from(i)),
            )
        })
        .collect();

    // widering thins the fleet so candidate rings must expand wide, and
    // only a sliver of it moves each epoch (wide rings over a mostly
    // clean index — the regime the cooperative scatter targets). readhot
    // keeps the fleet write-cold: a small trickle of in-window moves per
    // epoch dirties a hot cell or two so replica invalidation stays on
    // the critical path without churning every replica every epoch.
    let fleet = if variant == "widering" {
        (objects / 32).max(24)
    } else {
        objects
    };
    let wave = match variant {
        "widering" => (fleet / 8).max(4),
        "readhot" => (fleet / 256).max(4),
        _ => (fleet / 8).max(64),
    };
    let seed_wave: Wave = (0..fleet as u64)
        .map(|o| {
            let p = if variant == "readhot" {
                hot_sampler.position()
            } else {
                uniform.position()
            };
            (ObjectId(o), p, Timestamp(100))
        })
        .collect();

    let epochs = (0..epochs)
        .map(|e| {
            let t = Timestamp(1_000 * (e as u64 + 1));
            let wave_updates: Wave = (0..wave.min(fleet) as u64)
                .map(|j| {
                    let o = (e as u64 * wave as u64 + j) % fleet as u64;
                    let p = if variant == "readhot" {
                        hot_sampler.position()
                    } else {
                        uniform.position()
                    };
                    (ObjectId(o), p, t)
                })
                .collect();
            let query_batch: QueryBatch = (0..queries)
                .map(|j| {
                    let p = match variant {
                        "widering" => pinned_sampler.position(),
                        "readhot" => strata[j % 8].position(),
                        _ => uniform.position(),
                    };
                    (p, K)
                })
                .collect();
            (wave_updates, query_batch)
        })
        .collect();

    Script { seed_wave, epochs }
}

#[allow(clippy::too_many_arguments)]
fn run_stream(
    grid: &Arc<GraphGrid>,
    base: &GGridConfig,
    variant: &'static str,
    arm: &'static str,
    devices: usize,
    cross_shard: bool,
    replication: bool,
    script: &Script,
) -> RunResult {
    let config = GGridConfig {
        num_devices: devices,
        cross_shard_sdist: cross_shard,
        // The default threshold: a handful of reads per epoch (heat halves
        // at every rebalance) marks a cell read-hot. Ring expansion heats
        // every swept cell, but promotion only fires for non-empty
        // consolidated lists and the migration skip only honours cells
        // with live replicas, so the low threshold stays surgical.
        replicate_threshold: if replication { 4 } else { 0 },
        ..base.clone()
    };
    let mut server =
        GGridServer::with_shared_grid(grid.clone(), config, gpu_sim::Device::quadro_p2000());
    server.ingest_batch(&script.seed_wave);
    server.clean_all(Timestamp(500));

    let mut prev = server.counters().shard_busy_ns;
    let mut critical_ns = 0u64;
    let mut served = vec![0u64; devices];
    let mut answers = Vec::with_capacity(script.epochs.len());
    for (wave, queries) in &script.epochs {
        let t = wave.first().map(|u| u.2).unwrap_or(Timestamp(1_000));
        server.evict_all_topology();
        server.ingest_batch(wave);
        let batch = server.knn_batch(queries, t);
        answers.push(batch.answers);
        server.rebalance_shards();
        let busy = server.counters().shard_busy_ns;
        critical_ns += (0..devices).map(|i| busy[i] - prev[i]).max().unwrap_or(0);
        for (acc, d) in served.iter_mut().zip(0..devices) {
            *acc += busy[d] - prev[d];
        }
        prev = busy;
    }

    let c = server.counters();
    let total: u64 = served.iter().sum();
    let max = served.iter().max().copied().unwrap_or(0);
    RunResult {
        variant,
        arm,
        devices,
        critical_ns,
        total_busy_ns: total,
        max_busy_share: max as f64 / total.max(1) as f64,
        skew_ns: max.saturating_sub(total / devices.max(1) as u64),
        cross_shard_rounds: c.cross_shard_rounds,
        replica_hits: c.replica_hits,
        replica_invalidations: c.replica_invalidations,
        replicas_active: c.replicas_active,
        cells_migrated: c.cells_migrated,
        answers,
    }
}

#[allow(clippy::too_many_arguments)]
fn write_bench_json(
    dir: &Path,
    cfg: &ExpConfig,
    objects: usize,
    epochs: usize,
    queries: usize,
    outcomes: &[RunResult],
) -> std::io::Result<()> {
    let find = |variant: &str, arm: &str, d: usize| -> &RunResult {
        outcomes
            .iter()
            .find(|o| o.variant == variant && o.arm == arm && o.devices == d)
            .expect("sweep point missing")
    };

    let rows: Vec<String> = outcomes
        .iter()
        .map(|o| {
            format!(
                "{{\"variant\": \"{}\", \"arm\": \"{}\", \"devices\": {}, \"critical_ns\": {}, \"total_busy_ns\": {}, \"max_busy_share\": {:.4}, \"skew_ns\": {}, \"cross_shard_rounds\": {}, \"replica_hits\": {}, \"replica_invalidations\": {}, \"replicas_active\": {}, \"cells_migrated\": {}}}",
                o.variant,
                o.arm,
                o.devices,
                o.critical_ns,
                o.total_busy_ns,
                o.max_busy_share,
                o.skew_ns,
                o.cross_shard_rounds,
                o.replica_hits,
                o.replica_invalidations,
                o.replicas_active,
                o.cells_migrated,
            )
        })
        .collect();

    // Headlines at D = 4.
    let wide_base = find("widering", "baseline", 4).critical_ns as f64;
    let wide_coop = find("widering", "coop", 4).critical_ns as f64;
    let cross_shard_critical_cut = if wide_base > 0.0 {
        1.0 - wide_coop / wide_base
    } else {
        0.0
    };

    // The read-hotspot skew penalty of an arm is the serving busy-time
    // its busiest device carries beyond the perfect-balance share — under
    // migration-only cooperative SDist the hot cells' one owner serves
    // every query's gather and scattered leg, so that excess is exactly
    // what read-hot replication exists to win back.
    let p_coop = find("readhot", "coop", 4).skew_ns as f64;
    let p_repl = find("readhot", "coop_repl", 4).skew_ns as f64;
    let replication_skew_recovery = if p_coop > 0.0 {
        (p_coop - p_repl) / p_coop
    } else {
        0.0
    };

    let json = format!(
        "{{\n  \"bench\": \"sharding2\",\n  \"dataset\": \"NY\",\n  \"scale\": {},\n  \"objects\": {},\n  \"epochs\": {},\n  \"queries_per_epoch\": {},\n  \"k\": {},\n  \"rows\": [\n    {}\n  ],\n  \"cross_shard_critical_cut\": {:.4},\n  \"replication_skew_recovery\": {:.4}\n}}\n",
        cfg.scale,
        objects,
        epochs,
        queries,
        K,
        rows.join(",\n    "),
        cross_shard_critical_cut,
        replication_skew_recovery,
    );
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("BENCH_10.json"), json)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        // Scale 12 (≈22k vertices, 16k cells) is the smallest NY cut where
        // per-query relaxation dominates the fixed launch/PCIe overheads
        // enough for the cooperative headline effects to be measurable.
        ExpConfig {
            scale: 12,
            objects: 1000,
            queries: 8,
            out_dir: std::env::temp_dir().join("ggrid_sharding2_exp"),
            ..ExpConfig::quick()
        }
    }

    #[test]
    fn cooperative_floors_hold() {
        let cfg = tiny();
        let t = run(&cfg);
        // 3 variants × (D=1 baseline once + three D>1 points × three arms).
        assert_eq!(t.rows.len(), 30);
        let json = std::fs::read_to_string(cfg.out_dir.join("BENCH_10.json")).unwrap();
        let field = |name: &str| -> f64 {
            let tail = json.split(&format!("\"{name}\": ")).last().unwrap();
            tail.split([',', '\n', '}'])
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        assert!(
            field("cross_shard_critical_cut") >= 0.20,
            "cooperative SDist cut only {:.2} of the wide-ring critical path\n{json}",
            field("cross_shard_critical_cut")
        );
        assert!(
            field("replication_skew_recovery") >= 0.30,
            "replication recovered only {:.2} of the read-hotspot skew penalty\n{json}",
            field("replication_skew_recovery")
        );
        // Non-degeneracy: the cooperative paths actually fired.
        let sub_field = |src: &str, name: &str| -> f64 {
            src.split(&format!("\"{name}\": "))
                .nth(1)
                .unwrap()
                .split([',', '}'])
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        let coop_wide = json
            .split("\"variant\": \"widering\", \"arm\": \"coop\", \"devices\": 4")
            .nth(1)
            .unwrap();
        assert!(
            sub_field(coop_wide, "cross_shard_rounds") > 0.0,
            "widering coop never took a cooperative SDist round\n{json}"
        );
        let repl_hot = json
            .split("\"variant\": \"readhot\", \"arm\": \"coop_repl\", \"devices\": 4")
            .nth(1)
            .unwrap();
        assert!(
            sub_field(repl_hot, "replica_hits") > 0.0,
            "readhot coop_repl never served a ring cell from a replica\n{json}"
        );
        assert!(
            sub_field(repl_hot, "replica_invalidations") > 0.0,
            "readhot writes never invalidated a replica\n{json}"
        );
    }
}
