//! Extension study (beyond the paper): multi-device sharded serving.
//!
//! The same NY-shaped stream — group-commit ingest waves followed by a
//! fused `knn_batch` per epoch — replayed against `D ∈ {1, 2, 4, 8}`
//! simulated devices, each owning a contiguous z-order range of grid
//! cells. Two movement patterns:
//!
//! * **uniform** — updates and queries scatter network-wide, the
//!   best case for a static weighted partition (scale-out efficiency);
//! * **hotspot** — updates and queries crowd a fixed window of cells
//!   sitting right at a shard boundary, the worst case for a static
//!   partition: one shard soaks up nearly every cleaning round and SDist
//!   launch while its peers idle.
//!
//! Each `(variant, D)` point runs twice, with and without the busy-time
//! rebalancer ([`GGridServer::rebalance_shards`] once per epoch), and
//! every run's batch answers are asserted byte-identical to the `D = 1`
//! reference — sharding may move work, never answers.
//!
//! The modeled serving time `T(D)` is the sum over epochs of the busiest
//! shard's busy-time delta (kernel + transfer: the critical path of a
//! fully concurrent epoch). Headline figures in `BENCH_7.json`:
//!
//! * `efficiency_d4_uniform` — `T(1) / (4 · T(4))` on uniform load;
//! * `rebalance_recovery_hotspot` — the fraction of the hotspot skew
//!   penalty `T(D) − T(1)/D` at `D = 4` that rebalancing wins back;
//! * `merge_overhead_pct` — extra total busy-time sharding costs at
//!   `D = 4` uniform (duplicated staging, per-shard cleaning rounds)
//!   relative to the single-device run.

use std::path::Path;
use std::sync::Arc;

use ggrid::grid::GraphGrid;
use ggrid::prelude::*;
use roadnet::EdgeId;
use workload::CellWindowSampler;

use crate::csvout::{fmt_ns, ResultTable};
use crate::datasets::{build_dataset, DatasetSpec};
use crate::experiments::ExpConfig;
use crate::runner::BenchWorld;

const K: usize = 8;
const DEVICE_COUNTS: [usize; 4] = [1, 2, 4, 8];

type Wave = Vec<(ObjectId, EdgePosition, Timestamp)>;
type QueryBatch = Vec<(EdgePosition, usize)>;
/// Per epoch per query: the fused batch's `(object, distance)` answers.
type EpochAnswers = Vec<Vec<Vec<(ObjectId, Distance)>>>;

/// One replay of the scripted stream on a `(variant, D, rebalance)` point.
struct RunResult {
    variant: &'static str,
    devices: usize,
    rebalance: bool,
    /// `T(D)`: Σ over epochs of the busiest shard's busy delta.
    critical_ns: u64,
    /// Σ over shards of lifetime busy (the modeled total work).
    total_busy_ns: u64,
    /// Busiest shard's share of `total_busy_ns` (1.0 at D = 1).
    max_busy_share: f64,
    rebalances: u64,
    cells_migrated: u64,
    /// Per-epoch fused batch answers, for cross-D equality asserts.
    answers: EpochAnswers,
}

/// The scripted workload both variants replay identically at every D.
struct Script {
    seed_wave: Wave,
    /// Per epoch: one ingest wave and one query batch.
    epochs: Vec<(Wave, QueryBatch)>,
}

pub fn run(cfg: &ExpConfig) -> ResultTable {
    let ds = roadnet::gen::Dataset::NY;
    let world = BenchWorld::new(build_dataset(&DatasetSpec::new(ds, cfg.scale)));
    let base = cfg.index_params().ggrid;
    let grid = world.grid(base.cell_capacity, base.vertex_capacity);

    let objects = cfg.objects.max(512);
    let wave = (objects / 8).max(64);
    let epochs = if cfg.quick { 6 } else { 10 };
    // Enough queries per epoch that uniform primaries spread statistically
    // evenly over 8 shards; cfg.queries stays the floor for tiny runs.
    let queries = cfg.queries.max(24);

    let mut outcomes: Vec<RunResult> = Vec::new();
    for &variant in &["uniform", "hotspot"] {
        let script = build_script(&grid, cfg, variant, objects, wave, epochs, queries);
        let mut reference_answers: Option<EpochAnswers> = None;
        for &d in &DEVICE_COUNTS {
            for rebalance in [false, true] {
                if d == 1 && rebalance {
                    continue;
                }
                let r = run_stream(&grid, &base, variant, d, rebalance, &script);
                match &reference_answers {
                    None => reference_answers = Some(r.answers.clone()),
                    Some(want) => assert_eq!(
                        &r.answers, want,
                        "{variant}: answers diverged from D=1 at D={d} (rebalance={rebalance})"
                    ),
                }
                outcomes.push(r);
            }
        }
    }

    let t1 = |variant: &str| -> u64 {
        outcomes
            .iter()
            .find(|o| o.variant == variant && o.devices == 1)
            .map(|o| o.critical_ns)
            .unwrap_or(0)
    };

    let mut t = ResultTable::new(
        &format!(
            "Extension: multi-device sharding ({}, {} objects, wave {}, {} epochs, {} queries/epoch, k={K})",
            ds.name(),
            objects,
            wave,
            epochs,
            queries
        ),
        &[
            "Movement",
            "D",
            "Rebalance",
            "T(D)",
            "Efficiency",
            "Max share",
            "Rebalances",
            "Migrated",
        ],
    );
    for o in &outcomes {
        let eff = efficiency(t1(o.variant), o.devices, o.critical_ns);
        t.row(vec![
            o.variant.to_string(),
            o.devices.to_string(),
            if o.rebalance { "on" } else { "off" }.to_string(),
            fmt_ns(o.critical_ns),
            format!("{:.0}%", 100.0 * eff),
            format!("{:.0}%", 100.0 * o.max_busy_share),
            o.rebalances.to_string(),
            o.cells_migrated.to_string(),
        ]);
    }

    if let Err(e) = write_bench_json(&cfg.out_dir, cfg, objects, wave, epochs, queries, &outcomes) {
        eprintln!("warning: failed to write BENCH_7.json: {e}");
    }
    t
}

fn efficiency(t1: u64, d: usize, td: u64) -> f64 {
    t1 as f64 / (d as f64 * td.max(1) as f64)
}

/// Build the deterministic per-epoch waves and query batches. `hotspot`
/// confines both to a window of cells starting at the middle of the
/// z-order index space — right where a shard boundary lands at every
/// even D, so a static partition funnels the whole window to one shard.
fn build_script(
    grid: &Arc<GraphGrid>,
    cfg: &ExpConfig,
    variant: &str,
    objects: usize,
    wave: usize,
    epochs: usize,
    queries: usize,
) -> Script {
    let num_cells = grid.num_cells() as u32;
    let window = if variant == "hotspot" {
        let lo = num_cells / 2;
        // Widen until the window actually contains edges (z-values over
        // empty cells carry none).
        let mut w = (num_cells / 16).max(1);
        loop {
            let hi = (lo + w).min(num_cells);
            let has_edges = (0..grid.graph().num_edges() as u32)
                .map(EdgeId)
                .any(|e| (lo..hi).contains(&(grid.cell_of_edge(e).index() as u32)));
            if has_edges || hi == num_cells {
                break lo..hi;
            }
            w *= 2;
        }
    } else {
        0..num_cells
    };
    let mut sampler = CellWindowSampler::new(grid, window, cfg.seed ^ 0x7D7);
    let mut uniform = CellWindowSampler::whole_grid(grid, cfg.seed ^ 0x11A);

    // Seed fleet spread over the whole network in both variants, so the
    // weighted partition starts balanced and the skew comes from movement.
    let seed_wave: Wave = (0..objects as u64)
        .map(|o| (ObjectId(o), uniform.position(), Timestamp(100)))
        .collect();

    let epochs = (0..epochs)
        .map(|e| {
            let t = Timestamp(1_000 * (e as u64 + 1));
            // hotspot: a fixed pool of `wave` objects shuttles inside the
            // window (after the first epoch their tombstones land there
            // too, keeping all dirt local). uniform: the wave rotates
            // through the fleet.
            let wave_updates: Vec<(ObjectId, EdgePosition, Timestamp)> = (0..wave as u64)
                .map(|j| {
                    let o = if variant == "hotspot" {
                        j
                    } else {
                        (e as u64 * wave as u64 + j) % objects as u64
                    };
                    (ObjectId(o), sampler.position(), t)
                })
                .collect();
            let query_batch: Vec<(EdgePosition, usize)> =
                (0..queries).map(|_| (sampler.position(), K)).collect();
            (wave_updates, query_batch)
        })
        .collect();

    Script { seed_wave, epochs }
}

fn run_stream(
    grid: &Arc<GraphGrid>,
    base: &GGridConfig,
    variant: &'static str,
    devices: usize,
    rebalance: bool,
    script: &Script,
) -> RunResult {
    let config = GGridConfig {
        num_devices: devices,
        ..base.clone()
    };
    let mut server =
        GGridServer::with_shared_grid(grid.clone(), config, gpu_sim::Device::quadro_p2000());
    server.ingest_batch(&script.seed_wave);

    let mut prev = server.counters().shard_busy_ns;
    let mut critical_ns = 0u64;
    let mut answers = Vec::with_capacity(script.epochs.len());
    for (wave, queries) in &script.epochs {
        let t = wave.first().map(|u| u.2).unwrap_or(Timestamp(1_000));
        server.ingest_batch(wave);
        let batch = server.knn_batch(queries, t);
        answers.push(batch.answers);
        if rebalance {
            server.rebalance_shards();
        }
        let busy = server.counters().shard_busy_ns;
        critical_ns += (0..devices).map(|i| busy[i] - prev[i]).max().unwrap_or(0);
        prev = busy;
    }

    let c = server.counters();
    let total: u64 = c.shard_busy_ns[..devices].iter().sum();
    let max = c.shard_busy_ns[..devices]
        .iter()
        .max()
        .copied()
        .unwrap_or(0);
    RunResult {
        variant,
        devices,
        rebalance,
        critical_ns,
        total_busy_ns: total,
        max_busy_share: max as f64 / total.max(1) as f64,
        rebalances: c.rebalances,
        cells_migrated: c.cells_migrated,
        answers,
    }
}

#[allow(clippy::too_many_arguments)]
fn write_bench_json(
    dir: &Path,
    cfg: &ExpConfig,
    objects: usize,
    wave: usize,
    epochs: usize,
    queries: usize,
    outcomes: &[RunResult],
) -> std::io::Result<()> {
    let t1 = |variant: &str| -> u64 {
        outcomes
            .iter()
            .find(|o| o.variant == variant && o.devices == 1)
            .map(|o| o.critical_ns)
            .unwrap_or(0)
    };
    let find = |variant: &str, d: usize, rebal: bool| -> &RunResult {
        outcomes
            .iter()
            .find(|o| o.variant == variant && o.devices == d && o.rebalance == rebal)
            .expect("sweep point missing")
    };

    let rows: Vec<String> = outcomes
        .iter()
        .map(|o| {
            format!(
                "{{\"variant\": \"{}\", \"devices\": {}, \"rebalance\": {}, \"critical_ns\": {}, \"total_busy_ns\": {}, \"efficiency\": {:.4}, \"max_busy_share\": {:.4}, \"rebalances\": {}, \"cells_migrated\": {}}}",
                o.variant,
                o.devices,
                o.rebalance,
                o.critical_ns,
                o.total_busy_ns,
                efficiency(t1(o.variant), o.devices, o.critical_ns),
                o.max_busy_share,
                o.rebalances,
                o.cells_migrated,
            )
        })
        .collect();

    // Headlines at D = 4 (the mid-sweep point both floors are set on).
    let u4 = find("uniform", 4, false);
    let efficiency_d4_uniform = efficiency(t1("uniform"), 4, u4.critical_ns);
    let h1 = t1("hotspot") as f64;
    let p_static = find("hotspot", 4, false).critical_ns as f64 - h1 / 4.0;
    let p_rebal = find("hotspot", 4, true).critical_ns as f64 - h1 / 4.0;
    let rebalance_recovery_hotspot = if p_static > 0.0 {
        (p_static - p_rebal) / p_static
    } else {
        0.0
    };
    let merge_overhead_pct = 100.0
        * (u4.total_busy_ns as f64 / find("uniform", 1, false).total_busy_ns.max(1) as f64 - 1.0);

    let json = format!(
        "{{\n  \"bench\": \"sharding\",\n  \"dataset\": \"NY\",\n  \"scale\": {},\n  \"objects\": {},\n  \"wave\": {},\n  \"epochs\": {},\n  \"queries_per_epoch\": {},\n  \"k\": {},\n  \"rows\": [\n    {}\n  ],\n  \"efficiency_d4_uniform\": {:.4},\n  \"rebalance_recovery_hotspot\": {:.4},\n  \"merge_overhead_pct\": {:.2}\n}}\n",
        cfg.scale,
        objects,
        wave,
        epochs,
        queries,
        K,
        rows.join(",\n    "),
        efficiency_d4_uniform,
        rebalance_recovery_hotspot,
        merge_overhead_pct,
    );
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("BENCH_7.json"), json)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            scale: 50,
            objects: 1000,
            queries: 6,
            out_dir: std::env::temp_dir().join("ggrid_sharding_exp"),
            ..ExpConfig::quick()
        }
    }

    #[test]
    fn scale_out_floors_hold() {
        let cfg = tiny();
        let t = run(&cfg);
        // 2 variants × (D=1 once + three D>1 points × two arms).
        assert_eq!(t.rows.len(), 14);
        let json = std::fs::read_to_string(cfg.out_dir.join("BENCH_7.json")).unwrap();
        let field = |name: &str| -> f64 {
            let tail = json.split(&format!("\"{name}\": ")).last().unwrap();
            tail.split([',', '\n', '}'])
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        assert!(
            field("efficiency_d4_uniform") >= 0.60,
            "uniform scale-out efficiency at D=4 only {:.2}\n{json}",
            field("efficiency_d4_uniform")
        );
        assert!(
            field("rebalance_recovery_hotspot") >= 0.25,
            "rebalancing recovered only {:.2} of the hotspot skew penalty\n{json}",
            field("rebalance_recovery_hotspot")
        );
        // The hotspot sweep must be non-degenerate: the static D=4 run is
        // actually skewed, and the rebalancing arm actually migrated.
        let hot_static = json
            .split("\"variant\": \"hotspot\", \"devices\": 4, \"rebalance\": false")
            .nth(1)
            .unwrap();
        let sub_field = |src: &str, name: &str| -> f64 {
            src.split(&format!("\"{name}\": "))
                .nth(1)
                .unwrap()
                .split([',', '}'])
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        assert!(
            sub_field(hot_static, "max_busy_share") > 0.5,
            "hotspot load never skewed the static partition\n{json}"
        );
        let hot_rebal = json
            .split("\"variant\": \"hotspot\", \"devices\": 4, \"rebalance\": true")
            .nth(1)
            .unwrap();
        assert!(
            sub_field(hot_rebal, "cells_migrated") > 0.0,
            "rebalancer never migrated a cell under hotspot load\n{json}"
        );
    }
}
