//! Fig 10: scalability of G-Grid over network size.
//!
//! (a) running time grows with network size; (b) throughput
//! (queries/second) falls; (c)/(d) DRAM↔GPU transfer volume and time grow
//! with k and with network size, plateauing on huge networks where most
//! touched cells have empty message lists.

use crate::csvout::{fmt_bytes, fmt_ns, ResultTable};
use crate::datasets::{build_dataset, DatasetSpec};
use crate::experiments::ExpConfig;
use crate::runner::{run_one_in, BenchWorld, IndexKind};

const TRANSFER_KS: [usize; 3] = [8, 32, 128];

/// Fig 10 (a)+(b): running time and throughput per dataset.
pub fn run_time_throughput(cfg: &ExpConfig) -> ResultTable {
    let mut t = ResultTable::new(
        "Fig 10a/b: G-Grid running time & throughput vs network size (k=16)",
        &["Dataset", "|V|", "time/query", "throughput (q/s)"],
    );
    for ds in cfg.datasets() {
        let world = BenchWorld::new(build_dataset(&DatasetSpec::new(ds, cfg.scale)));
        let outcome = run_one_in(
            &world,
            IndexKind::GGrid,
            &cfg.index_params(),
            &cfg.scenario(),
        );
        let ns = outcome.serial_ns_per_query().unwrap();
        let qps = 1e9 / ns.max(1) as f64;
        t.row(vec![
            ds.name().to_string(),
            world.graph.num_vertices().to_string(),
            fmt_ns(ns),
            format!("{qps:.1}"),
        ]);
    }
    t
}

/// Fig 10 (c)+(d): transfer volume and time per query vs network size, for
/// k ∈ {8, 32, 128}.
pub fn run_transfers(cfg: &ExpConfig) -> ResultTable {
    let mut headers = vec!["Dataset".to_string(), "|V|".to_string()];
    for k in TRANSFER_KS {
        headers.push(format!("bytes/q (k={k})"));
        headers.push(format!("xfer time/q (k={k})"));
    }
    let mut t = ResultTable {
        title: "Fig 10c/d: DRAM-GPU transfer size and time per query".into(),
        headers,
        rows: Vec::new(),
    };
    for ds in cfg.datasets() {
        let world = BenchWorld::new(build_dataset(&DatasetSpec::new(ds, cfg.scale)));
        let mut row = vec![
            ds.name().to_string(),
            world.graph.num_vertices().to_string(),
        ];
        for k in TRANSFER_KS {
            let mut scenario = cfg.scenario();
            scenario.k = k;
            let outcome = run_one_in(&world, IndexKind::GGrid, &cfg.index_params(), &scenario);
            let r = outcome.report.as_ref().unwrap();
            let bytes = (r.sim.h2d_bytes + r.sim.d2h_bytes) / r.queries.max(1) as u64;
            let xfer = r.sim.transfer_time.0 / r.queries.max(1) as u64;
            row.push(fmt_bytes(bytes));
            row.push(fmt_ns(xfer));
        }
        t.rows.push(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            scale: 4000,
            objects: 150,
            queries: 2,
            ..ExpConfig::quick()
        }
    }

    #[test]
    fn time_throughput_rows() {
        let t = run_time_throughput(&tiny());
        assert_eq!(t.rows.len(), tiny().datasets().len());
    }

    #[test]
    fn transfer_rows_and_columns() {
        let t = run_transfers(&tiny());
        assert_eq!(t.rows.len(), tiny().datasets().len());
        assert_eq!(t.headers.len(), 2 + 2 * TRANSFER_KS.len());
    }
}
