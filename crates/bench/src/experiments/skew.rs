//! Extension study (beyond the paper): object skew.
//!
//! The paper evaluates uniformly distributed fleets. Real fleets cluster —
//! rush-hour downtowns, airport queues — and skew is where a lazy index
//! should shine brightest: queries inside a hotspot touch few, dense cells
//! (one cleaning pass covers many objects), while queries elsewhere touch
//! almost-empty lists. This experiment compares uniform vs hotspot
//! placements for G-Grid and V-Tree.

use workload::moto::Placement;

use crate::csvout::{fmt_ns, ResultTable};
use crate::datasets::{build_dataset, DatasetSpec};
use crate::experiments::ExpConfig;
use crate::runner::{run_one_in, BenchWorld, IndexKind};

pub fn run(cfg: &ExpConfig) -> ResultTable {
    let ds = roadnet::gen::Dataset::NY;
    let world = BenchWorld::new(build_dataset(&DatasetSpec::new(ds, cfg.scale)));
    let mut t = ResultTable::new(
        &format!("Extension: object skew ({}, k=16)", ds.name()),
        &["Placement", "G-Grid", "V-Tree"],
    );
    let placements = [
        ("uniform", Placement::Uniform),
        (
            "hotspot (4 centers, 3 hops)",
            Placement::Hotspot {
                centers: 4,
                radius_hops: 3,
            },
        ),
        (
            "hotspot (1 center, 2 hops)",
            Placement::Hotspot {
                centers: 1,
                radius_hops: 2,
            },
        ),
    ];
    for (label, placement) in placements {
        let mut scenario = cfg.scenario();
        scenario.moto.placement = placement;
        let fmt = |kind| {
            run_one_in(&world, kind, &cfg.index_params(), &scenario)
                .serial_ns_per_query()
                .map(fmt_ns)
                .unwrap_or_else(|| "-".into())
        };
        t.row(vec![
            label.to_string(),
            fmt(IndexKind::GGrid),
            fmt(IndexKind::VTree),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_table_runs() {
        let cfg = ExpConfig {
            scale: 4000,
            objects: 100,
            queries: 2,
            ..ExpConfig::quick()
        };
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 3);
    }
}
