//! Fig 5: query running time vs datasets (k = 16).
//!
//! Columns follow the paper: G-Grid (L) is the serial per-query latency
//! clock, G-Grid the overlapped amortised clock, then the three baselines.
//! V-Tree (G) reports `-` where its index exceeds device memory (USA).

use crate::csvout::{fmt_ns, ResultTable};
use crate::datasets::{build_dataset, DatasetSpec};
use crate::experiments::ExpConfig;
use crate::runner::{run_all_indexes, IndexKind};

pub fn run(cfg: &ExpConfig) -> ResultTable {
    let mut t = ResultTable::new(
        "Fig 5: amortized query time vs datasets (k=16)",
        &[
            "Dataset",
            "G-Grid",
            "G-Grid (L)",
            "V-Tree",
            "V-Tree (G)",
            "ROAD",
        ],
    );
    for ds in cfg.datasets() {
        let graph = build_dataset(&DatasetSpec::new(ds, cfg.scale));
        let outcomes = run_all_indexes(
            &graph,
            &cfg.index_params(),
            &cfg.scenario(),
            &IndexKind::ALL,
        );
        let find = |k: IndexKind| outcomes.iter().find(|o| o.kind == k).unwrap();
        let ggrid = find(IndexKind::GGrid);
        let fmt_opt = |ns: Option<u64>| ns.map(fmt_ns).unwrap_or_else(|| "-".into());
        t.row(vec![
            ds.name().to_string(),
            fmt_opt(ggrid.overlapped_ns_per_query()),
            fmt_opt(ggrid.serial_ns_per_query()),
            fmt_opt(find(IndexKind::VTree).serial_ns_per_query()),
            fmt_opt(find(IndexKind::VTreeGpu).serial_ns_per_query()),
            fmt_opt(find(IndexKind::Road).serial_ns_per_query()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_row_per_dataset() {
        let cfg = ExpConfig {
            scale: 4000,
            objects: 120,
            queries: 2,
            ..ExpConfig::quick()
        };
        let t = run(&cfg);
        assert_eq!(t.rows.len(), cfg.datasets().len());
        // Every cell filled (small graphs fit the device).
        for row in &t.rows {
            assert!(row.iter().all(|c| !c.is_empty()));
        }
    }
}
