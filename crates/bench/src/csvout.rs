//! Minimal CSV emission for experiment results.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A rectangular result table destined for stdout and a CSV file.
pub struct ResultTable {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl ResultTable {
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "ragged result row");
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Write as CSV under `dir/<name>.csv`.
    pub fn write_csv(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut text = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            text,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                text,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        fs::write(dir.join(format!("{name}.csv")), text)
    }
}

/// Format nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Format bytes with an adaptive unit.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2}GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2}MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.2}KiB", b as f64 / 1024.0)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns() {
        let mut t = ResultTable::new("demo", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("demo"));
        assert!(r.contains("long-header"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let mut t = ResultTable::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn csv_escapes() {
        let dir = std::env::temp_dir().join("ggrid_csv_test");
        let mut t = ResultTable::new("demo", &["a,b", "c"]);
        t.row(vec!["x\"y".into(), "z".into()]);
        t.write_csv(&dir, "t").unwrap();
        let text = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert!(text.contains("\"a,b\""));
        assert!(text.contains("\"x\"\"y\""));
    }

    #[test]
    fn formats() {
        assert_eq!(fmt_ns(500), "500ns");
        assert_eq!(fmt_ns(2_500), "2.50us");
        assert_eq!(fmt_ns(3_000_000), "3.00ms");
        assert_eq!(fmt_ns(4_200_000_000), "4.20s");
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.00KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.00MiB");
    }
}
