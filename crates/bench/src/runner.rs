//! Builds each index over a dataset and replays a scenario against it.
//!
//! Index substrates that are immutable after construction — the G-Grid's
//! graph grid and the baselines' region matrices — are cached per dataset
//! in a [`BenchWorld`], so a parameter sweep partitions the network once
//! instead of once per configuration.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use baselines::region::RegionIndex;
use baselines::{Road, VTree, VTreeGpu};
use ggrid::api::{IndexSize, MovingObjectIndex};
use ggrid::grid::GraphGrid;
use ggrid::{GGridConfig, GGridServer};
use roadnet::graph::Graph;
use workload::scenario::{run_scenario, ScenarioConfig, ScenarioReport};

/// Per-dataset cache of the expensive immutable substrates.
pub struct BenchWorld {
    pub graph: Arc<Graph>,
    grids: Mutex<HashMap<(usize, usize), Arc<GraphGrid>>>,
    regions: Mutex<HashMap<usize, Arc<RegionIndex>>>,
}

impl BenchWorld {
    pub fn new(graph: Arc<Graph>) -> Self {
        Self {
            graph,
            grids: Mutex::new(HashMap::new()),
            regions: Mutex::new(HashMap::new()),
        }
    }

    /// The graph grid for (δᶜ, δᵛ), built once.
    pub fn grid(&self, cell_capacity: usize, vertex_capacity: usize) -> Arc<GraphGrid> {
        self.grids
            .lock()
            .expect("grid cache poisoned")
            .entry((cell_capacity, vertex_capacity))
            .or_insert_with(|| {
                Arc::new(GraphGrid::build(
                    self.graph.clone(),
                    cell_capacity,
                    vertex_capacity,
                ))
            })
            .clone()
    }

    /// The region substrate for a leaf capacity, built once.
    pub fn regions(&self, leaf_capacity: usize) -> Arc<RegionIndex> {
        self.regions
            .lock()
            .expect("region cache poisoned")
            .entry(leaf_capacity)
            .or_insert_with(|| Arc::new(RegionIndex::build(self.graph.clone(), leaf_capacity)))
            .clone()
    }
}

/// The four competitors of the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexKind {
    GGrid,
    VTree,
    VTreeGpu,
    Road,
}

impl IndexKind {
    pub const ALL: [IndexKind; 4] = [
        IndexKind::GGrid,
        IndexKind::VTree,
        IndexKind::VTreeGpu,
        IndexKind::Road,
    ];

    pub fn name(self) -> &'static str {
        match self {
            IndexKind::GGrid => "G-Grid",
            IndexKind::VTree => "V-Tree",
            IndexKind::VTreeGpu => "V-Tree (G)",
            IndexKind::Road => "ROAD",
        }
    }
}

/// Shared index-construction parameters.
#[derive(Clone, Debug)]
pub struct IndexParams {
    pub ggrid: GGridConfig,
    pub leaf_capacity: usize,
    pub t_delta_ms: u64,
}

impl Default for IndexParams {
    fn default() -> Self {
        Self {
            ggrid: GGridConfig::default(),
            leaf_capacity: 64,
            t_delta_ms: 10_000,
        }
    }
}

/// Result of one (index, scenario) run.
pub struct RunOutcome {
    pub kind: IndexKind,
    /// `None` when the index could not be built (V-Tree (G) out of device
    /// memory — the paper's USA omission).
    pub report: Option<ScenarioReport>,
    pub index_size: IndexSize,
    pub build_skipped: bool,
}

impl RunOutcome {
    /// Amortised `(T_u + T_q)/n_q` with serial CPU+GPU accounting — the
    /// paper's "G-Grid (L)" latency clock for GPU indexes.
    pub fn serial_ns_per_query(&self) -> Option<u64> {
        self.report.as_ref().map(|r| r.amortized_ns_per_query())
    }

    /// Amortised time with CPU/GPU overlap across queries — the paper's
    /// "G-Grid" clock (the server processes multiple queries in parallel,
    /// so host work of one query hides device work of another).
    pub fn overlapped_ns_per_query(&self) -> Option<u64> {
        self.report.as_ref().map(|r| {
            let cpu = (r.update_wall_ns + r.query_wall_ns).saturating_sub(r.emulated_ns);
            let total = cpu.max(r.sim.total_time().0);
            total / r.queries.max(1) as u64
        })
    }
}

/// Build one index over `graph`, reusing `world`'s cached substrates.
pub fn build_index_in(
    world: &BenchWorld,
    kind: IndexKind,
    params: &IndexParams,
) -> Option<Box<dyn MovingObjectIndex>> {
    match kind {
        IndexKind::GGrid => {
            let cfg = GGridConfig {
                t_delta_ms: params.t_delta_ms,
                ..params.ggrid.clone()
            };
            let grid = world.grid(cfg.cell_capacity, cfg.vertex_capacity);
            Some(Box::new(GGridServer::with_shared_grid(
                grid,
                cfg,
                gpu_sim::Device::quadro_p2000(),
            )))
        }
        IndexKind::VTree => Some(Box::new(VTree::from_regions(
            world.graph.clone(),
            world.regions(params.leaf_capacity),
            params.t_delta_ms,
        ))),
        IndexKind::VTreeGpu => VTreeGpu::from_regions(
            world.graph.clone(),
            world.regions(params.leaf_capacity),
            params.t_delta_ms,
            gpu_sim::Device::quadro_p2000(),
        )
        .ok()
        .map(|v| Box::new(v) as Box<dyn MovingObjectIndex>),
        IndexKind::Road => Some(Box::new(Road::from_regions(
            world.graph.clone(),
            world.regions(params.leaf_capacity),
            params.t_delta_ms,
        ))),
    }
}

/// Build one index over `graph` (uncached convenience wrapper).
pub fn build_index(
    kind: IndexKind,
    graph: &Arc<Graph>,
    params: &IndexParams,
) -> Option<Box<dyn MovingObjectIndex>> {
    build_index_in(&BenchWorld::new(graph.clone()), kind, params)
}

/// Run `scenario` against one index kind, reusing cached substrates.
pub fn run_one_in(
    world: &BenchWorld,
    kind: IndexKind,
    params: &IndexParams,
    scenario: &ScenarioConfig,
) -> RunOutcome {
    let graph = &world.graph;
    match build_index_in(world, kind, params) {
        Some(mut index) => {
            let report = run_scenario(graph, index.as_mut(), scenario, params.t_delta_ms, false);
            RunOutcome {
                kind,
                index_size: index.index_size(),
                report: Some(report),
                build_skipped: false,
            }
        }
        None => RunOutcome {
            kind,
            report: None,
            index_size: IndexSize::default(),
            build_skipped: true,
        },
    }
}

/// Run `scenario` against one index kind (uncached convenience wrapper).
pub fn run_one(
    kind: IndexKind,
    graph: &Arc<Graph>,
    params: &IndexParams,
    scenario: &ScenarioConfig,
) -> RunOutcome {
    run_one_in(&BenchWorld::new(graph.clone()), kind, params, scenario)
}

/// Run `scenario` against every index in `kinds`, sharing substrates.
pub fn run_all_indexes(
    graph: &Arc<Graph>,
    params: &IndexParams,
    scenario: &ScenarioConfig,
    kinds: &[IndexKind],
) -> Vec<RunOutcome> {
    let world = BenchWorld::new(graph.clone());
    kinds
        .iter()
        .map(|&k| run_one_in(&world, k, params, scenario))
        .collect()
}

/// Run against every index in `kinds` with an existing world.
pub fn run_all_in(
    world: &BenchWorld,
    params: &IndexParams,
    scenario: &ScenarioConfig,
    kinds: &[IndexKind],
) -> Vec<RunOutcome> {
    kinds
        .iter()
        .map(|&k| run_one_in(world, k, params, scenario))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::moto::MotoConfig;

    fn tiny_scenario() -> ScenarioConfig {
        ScenarioConfig {
            moto: MotoConfig {
                num_objects: 20,
                update_period_ms: 300,
                seed: 4,
                ..Default::default()
            },
            k: 3,
            query_interval_ms: 400,
            num_queries: 3,
            warmup_ms: 350,
            query_seed: 8,
            buffered_ingest: false,
        }
    }

    #[test]
    fn all_four_indexes_run() {
        let graph = Arc::new(roadnet::gen::toy(2));
        let params = IndexParams {
            ggrid: GGridConfig {
                eta: 4,
                ..Default::default()
            },
            leaf_capacity: 8,
            t_delta_ms: 10_000,
        };
        let outcomes = run_all_indexes(&graph, &params, &tiny_scenario(), &IndexKind::ALL);
        assert_eq!(outcomes.len(), 4);
        for o in &outcomes {
            assert!(!o.build_skipped, "{} failed to build", o.kind.name());
            let r = o.report.as_ref().unwrap();
            assert_eq!(r.queries, 3);
            assert!(o.serial_ns_per_query().unwrap() > 0);
            assert!(o.overlapped_ns_per_query().unwrap() <= o.serial_ns_per_query().unwrap());
        }
    }

    #[test]
    fn indexes_agree_on_answers() {
        let graph = Arc::new(roadnet::gen::toy(2));
        let params = IndexParams {
            ggrid: GGridConfig {
                eta: 4,
                ..Default::default()
            },
            leaf_capacity: 8,
            t_delta_ms: 10_000,
        };
        let outcomes = run_all_indexes(&graph, &params, &tiny_scenario(), &IndexKind::ALL);
        let dists: Vec<Vec<Vec<u64>>> = outcomes
            .iter()
            .map(|o| {
                o.report
                    .as_ref()
                    .unwrap()
                    .answers
                    .iter()
                    .map(|a| a.iter().map(|&(_, d)| d).collect())
                    .collect()
            })
            .collect();
        for other in &dists[1..] {
            assert_eq!(&dists[0], other, "indexes disagree");
        }
    }
}
