//! # ggrid-bench — experiment harness
//!
//! Regenerates every table and figure of the G-Grid paper's evaluation
//! (§VII) on the synthetic, scale-preserving datasets of
//! [`roadnet::gen`]. The `experiments` binary prints each experiment as an
//! aligned table and writes a CSV next to it under `results/`.
//!
//! Absolute numbers differ from the paper (the substrate is a simulator,
//! not the authors' Xeon + Quadro P2000 testbed, and the datasets are
//! scaled); the *shapes* — who wins, by roughly what factor, where the
//! crossovers fall — are the reproduction targets. See EXPERIMENTS.md for
//! the paper-vs-measured record.

pub mod csvout;
pub mod datasets;
pub mod experiments;
pub mod runner;

pub use datasets::{build_dataset, DatasetSpec};
pub use runner::{run_all_indexes, IndexKind, RunOutcome};
