//! Regenerate the paper's tables and figures.
//!
//! ```text
//! experiments [EXPERIMENT...] [--quick] [--scale N] [--objects N]
//!             [--queries N] [--out DIR]
//!
//! EXPERIMENT ∈ {table2, fig4a, fig4b, fig4c, fig5, fig6, fig7, fig8,
//!               fig9, fig10, ablation, skew, concurrency, residency,
//!               sdist, ingest, batch_fusion, subscriptions, sharding,
//               sharding2, capacity, serving, all}
//! (default: all)
//! ```
//!
//! Each experiment prints an aligned table and writes `results/<name>.csv`.
//! Set `GGRID_DIMACS_DIR` to a directory of real DIMACS `.gr` files to run
//! on the paper's original datasets.

use std::path::PathBuf;

use ggrid_bench::csvout::ResultTable;
use ggrid_bench::experiments::{
    ablation, batch_fusion, capacity, concurrency, fig10_scalability, fig4_tuning, fig5_datasets,
    fig6_index_size, fig7_vary_k, fig8_vary_objects, fig9_vary_freq, ingest, residency, sdist,
    serving, sharding, sharding2, skew, subscriptions, table2_datasets, ExpConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ExpConfig::default();
    let mut chosen: Vec<String> = Vec::new();

    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => {
                let base = ExpConfig::quick();
                cfg.scale = base.scale;
                cfg.objects = base.objects;
                cfg.queries = base.queries;
                cfg.quick = true;
            }
            "--scale" => cfg.scale = expect_num(&mut it, "--scale") as u32,
            "--objects" => cfg.objects = expect_num(&mut it, "--objects") as usize,
            "--queries" => cfg.queries = expect_num(&mut it, "--queries") as usize,
            "--out" => match it.next() {
                Some(dir) => cfg.out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("error: --out needs a directory\n{HELP}");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!("{}", HELP);
                return;
            }
            other if !other.starts_with('-') => chosen.push(other.to_string()),
            other => {
                eprintln!("unknown flag {other}\n{HELP}");
                std::process::exit(2);
            }
        }
    }
    if chosen.is_empty() || chosen.iter().any(|c| c == "all") {
        chosen = vec![
            "table2",
            "fig4a",
            "fig4b",
            "fig4c",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "ablation",
            "skew",
            "concurrency",
            "residency",
            "sdist",
            "ingest",
            "batch_fusion",
            "subscriptions",
            "sharding",
            "sharding2",
            "capacity",
            "serving",
        ]
        .into_iter()
        .map(String::from)
        .collect();
    }

    println!(
        "# G-Grid experiment harness — scale 1/{}, |O|={}, {} queries{}",
        cfg.scale,
        cfg.objects,
        cfg.queries,
        if cfg.quick { " (quick)" } else { "" }
    );

    for name in &chosen {
        let started = std::time::Instant::now();
        let tables: Vec<(String, ResultTable)> = match name.as_str() {
            "table2" => vec![("table2".into(), table2_datasets::run(&cfg))],
            "fig4a" => vec![("fig4a".into(), fig4_tuning::run_a(&cfg))],
            "fig4b" => vec![("fig4b".into(), fig4_tuning::run_b(&cfg))],
            "fig4c" => vec![("fig4c".into(), fig4_tuning::run_c(&cfg))],
            "fig5" => vec![("fig5".into(), fig5_datasets::run(&cfg))],
            "fig6" => vec![("fig6".into(), fig6_index_size::run(&cfg))],
            "fig7" => fig7_vary_k::run(&cfg)
                .into_iter()
                .enumerate()
                .map(|(i, t)| (format!("fig7_{i}"), t))
                .collect(),
            "fig8" => vec![("fig8".into(), fig8_vary_objects::run(&cfg))],
            "fig9" => vec![("fig9".into(), fig9_vary_freq::run(&cfg))],
            "fig10" => vec![
                (
                    "fig10_ab".into(),
                    fig10_scalability::run_time_throughput(&cfg),
                ),
                ("fig10_cd".into(), fig10_scalability::run_transfers(&cfg)),
            ],
            "ablation" => vec![("ablation".into(), ablation::run(&cfg))],
            "skew" => vec![("skew".into(), skew::run(&cfg))],
            "concurrency" => vec![("concurrency".into(), concurrency::run(&cfg))],
            "residency" => vec![("residency".into(), residency::run(&cfg))],
            "sdist" => vec![("sdist".into(), sdist::run(&cfg))],
            "ingest" => vec![("ingest".into(), ingest::run(&cfg))],
            "batch_fusion" => vec![("batch_fusion".into(), batch_fusion::run(&cfg))],
            "subscriptions" => vec![("subscriptions".into(), subscriptions::run(&cfg))],
            "sharding" => vec![("sharding".into(), sharding::run(&cfg))],
            "sharding2" => vec![("sharding2".into(), sharding2::run(&cfg))],
            "capacity" => vec![("capacity".into(), capacity::run(&cfg))],
            "serving" => vec![("serving".into(), serving::run(&cfg))],
            other => {
                eprintln!("unknown experiment `{other}`\n{HELP}");
                std::process::exit(2);
            }
        };
        for (file, table) in tables {
            println!("{}", table.render());
            if let Err(e) = table.write_csv(&cfg.out_dir, &file) {
                eprintln!("warning: failed to write {file}.csv: {e}");
            }
        }
        eprintln!("[{name} done in {:.1}s]\n", started.elapsed().as_secs_f64());
    }
}

fn expect_num(it: &mut std::iter::Peekable<std::slice::Iter<String>>, flag: &str) -> u64 {
    let bad = || -> ! {
        eprintln!("error: {flag} needs a positive number\n{HELP}");
        std::process::exit(2);
    };
    match it.next().map(|v| v.parse::<u64>()) {
        Some(Ok(n)) if n > 0 => n,
        _ => bad(),
    }
}

const HELP: &str = "usage: experiments [table2|fig4a|fig4b|fig4c|fig5|fig6|fig7|fig8|fig9|fig10|ablation|skew|concurrency|residency|sdist|ingest|batch_fusion|subscriptions|sharding|sharding2|capacity|serving|all]...
  --quick           small datasets/fleets for a fast pass
  --scale N         divide real dataset sizes by N (default 500)
  --objects N       number of moving objects (default 10000)
  --queries N       queries per measurement (default 10)
  --out DIR         CSV output directory (default results/)
  GGRID_DIMACS_DIR  directory of real DIMACS .gr files to use instead";
