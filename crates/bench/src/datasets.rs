//! Experiment dataset construction.
//!
//! Each experiment instantiates the paper's six road networks (Table II) at
//! a configurable scale-down factor via [`roadnet::gen::dataset`], or loads
//! a real DIMACS `.gr` file when one is available on disk.

use std::sync::Arc;

use roadnet::gen::{self, Dataset};
use roadnet::graph::Graph;

/// How to obtain a dataset graph.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    pub dataset: Dataset,
    /// Divide the real vertex count by this factor (≥ 1).
    pub scale: u32,
    pub seed: u64,
}

impl DatasetSpec {
    pub fn new(dataset: Dataset, scale: u32) -> Self {
        Self {
            dataset,
            scale,
            seed: 0xD15EA5E,
        }
    }

    pub fn name(&self) -> &'static str {
        self.dataset.name()
    }
}

/// Build (or load) the graph for `spec`.
///
/// If `GGRID_DIMACS_DIR` is set and contains `<name>.gr`, the real DIMACS
/// file is parsed instead of generating a synthetic network — the paper's
/// exact datasets drop in without code changes.
pub fn build_dataset(spec: &DatasetSpec) -> Arc<Graph> {
    if let Ok(dir) = std::env::var("GGRID_DIMACS_DIR") {
        let path = std::path::Path::new(&dir).join(format!("{}.gr", spec.name()));
        if let Ok(file) = std::fs::File::open(&path) {
            let reader = std::io::BufReader::new(file);
            match roadnet::dimacs::read_gr(reader) {
                Ok(g) => return Arc::new(g),
                Err(e) => eprintln!("warning: failed to parse {path:?}: {e}; generating instead"),
            }
        }
    }
    Arc::new(gen::dataset(spec.dataset, spec.scale, spec.seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_all_presets() {
        for ds in Dataset::ALL {
            let g = build_dataset(&DatasetSpec::new(ds, 4000));
            assert!(g.num_vertices() >= 64);
        }
    }

    #[test]
    fn scale_changes_size() {
        let small = build_dataset(&DatasetSpec::new(Dataset::NY, 2000));
        let large = build_dataset(&DatasetSpec::new(Dataset::NY, 200));
        assert!(large.num_vertices() > small.num_vertices());
    }
}
