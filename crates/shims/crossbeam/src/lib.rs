//! Offline shim for `crossbeam`.
//!
//! Provides `crossbeam::thread::scope` with the upstream call shape
//! (`scope(|s| { s.spawn(|_| ...); }).unwrap()`), implemented on top of
//! `std::thread::scope` (stable since 1.63). Only the scoped-thread
//! surface the workspace uses is included.

pub mod thread {
    use std::any::Any;
    use std::marker::PhantomData;

    /// Error type of a scope whose closure panicked (never produced by the
    /// shim: panics propagate out of `std::thread::scope` directly).
    pub type ScopeError = Box<dyn Any + Send + 'static>;

    /// Handle to a scope, passed to `scope`'s closure and to every spawned
    /// thread's closure (crossbeam's signature).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope again so
        /// workers can spawn sub-workers, exactly like crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
                _marker: PhantomData,
            }
        }
    }

    /// Handle to a scoped thread; `join` returns `Err` if the thread
    /// panicked.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
        _marker: PhantomData<&'scope ()>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, ScopeError> {
            self.inner.join()
        }
    }

    /// Create a scope for spawning threads that borrow from the enclosing
    /// environment. Returns `Ok` with the closure's value; the `Result`
    /// mirrors crossbeam's signature so call sites keep their `.unwrap()`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scope_joins_all_threads() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn workers_can_spawn_sub_workers() {
        let n = thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }

    #[test]
    fn threads_borrow_environment() {
        let mut results = vec![0u32; 4];
        thread::scope(|s| {
            for (i, slot) in results.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i as u32 * 10);
            }
        })
        .unwrap();
        assert_eq!(results, vec![0, 10, 20, 30]);
    }
}
