//! Offline shim for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the `rand 0.8` API its crates actually use:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and
//! float ranges, [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! across platforms, which is all the workspace needs (every consumer
//! seeds explicitly; nothing relies on the upstream crate's exact value
//! stream).

use std::ops::{Range, RangeInclusive};

/// Subset of `rand_core::RngCore`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Subset of `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// Subset of `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, deterministic.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    /// Alias: the shim does not distinguish the std generator.
    pub type StdRng = SmallRng;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Subset of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let same = (0..100)
            .filter(|_| a.gen_range(0u64..1000) == c.gen_range(0u64..1000))
            .count();
        assert!(same < 50, "different seeds produced identical streams");
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&y));
            let f = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice fully ordered");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
