//! Offline shim for `parking_lot`.
//!
//! The build environment cannot fetch crates.io, so this crate provides
//! the `Mutex`/`RwLock` surface the workspace uses, backed by `std::sync`.
//! The shim keeps `parking_lot`'s ergonomics: `lock()`/`read()`/`write()`
//! return guards directly (poisoning is converted into a panic, which is
//! what every caller would do with the `Result` anyway).

use std::fmt;
use std::sync;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// `parking_lot::Mutex`: non-poisoning mutual exclusion.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// `parking_lot::RwLock`: non-poisoning reader–writer lock.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0u32);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
