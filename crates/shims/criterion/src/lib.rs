//! Offline shim for `criterion`.
//!
//! The build environment cannot fetch crates.io, so this crate provides the
//! benchmark-definition surface the workspace's `harness = false` benches
//! use: `Criterion`, `benchmark_group`/`bench_function`/`bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros.
//!
//! Instead of criterion's adaptive sampling and statistics, each benchmark
//! runs a short warm-up iteration followed by a small fixed number of timed
//! iterations and prints the mean wall-clock time per iteration. That keeps
//! `cargo bench` fast and deterministic-ish while still exercising the real
//! code paths end to end (which is what the repo's benches are for — the
//! quantitative experiments live in the `experiments` binary).

use std::hint;
use std::time::{Duration, Instant};

/// Re-export point for `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for a parameterised benchmark case.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Passed to the closure given to `iter`; times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` once as warm-up, then `iters` timed times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    /// Timed iterations per benchmark (criterion's `sample_size` maps to
    /// this, clamped to keep `cargo bench` quick).
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).clamp(1, 20);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_case(None, id, self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A named group of related benchmark cases.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).clamp(1, 20);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_case(Some(&self.name), &id.into().id, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_case(Some(&self.name), &id.into().id, self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

fn run_case<F: FnMut(&mut Bencher)>(group: Option<&str>, id: &str, iters: u64, mut f: F) {
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_nanos() / u128::from(iters.max(1));
    println!("bench: {label:<48} {per_iter:>12} ns/iter ({iters} iters)");
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags (`--bench`,
            // `--test`, filters); a fixed-iteration shim has nothing to
            // configure, so they are accepted and ignored.
            let _args: Vec<String> = std::env::args().collect();
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        let mut c = Criterion::default();
        c.bench_function("count_calls", |b| b.iter(|| calls += 1));
        // One warm-up plus `sample_size` timed iterations.
        assert_eq!(calls, 11);
    }

    #[test]
    fn group_respects_sample_size() {
        let mut calls = 0u64;
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| calls += u64::from(x))
        });
        g.finish();
        assert_eq!(calls, 4 * 7);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("ny").id, "ny");
    }
}
