//! Offline shim for `proptest`.
//!
//! The build environment cannot fetch crates.io, so this crate implements
//! the slice of the proptest API the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]` support),
//! * [`Strategy`] with `prop_map`, implemented for integer/float ranges
//!   and tuples,
//! * `prop::collection::vec` and `prop::bool::weighted`,
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assume!`.
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! generated inputs' `Debug` form via the assertion message), and the value
//! stream is this crate's own deterministic PRNG, seeded per test from the
//! test's name so runs are reproducible.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// Deterministic PRNG driving value generation (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name: same test, same value stream, every run.
        pub fn deterministic(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            Self { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

use test_runner::TestRng;

/// Subset of `proptest::test_runner::Config`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of values. Unlike upstream there is no `ValueTree`/shrinking
/// machinery: a strategy simply produces a value from the RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `Just`: always the same (cloned) value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// The `prop::` namespace (`prelude::*` re-exports it like upstream).
pub mod prop {
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec`s with element strategy `S` and a uniformly
        /// drawn length in `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty vec size range");
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.end - self.size.start) as u64;
                let len = self.size.start + (rng.next_u64() % span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod bool {
        use super::super::{Strategy, TestRng};

        /// `true` with probability `p`.
        pub struct Weighted {
            p: f64,
        }

        pub fn weighted(p: f64) -> Weighted {
            assert!((0.0..=1.0).contains(&p));
            Weighted { p }
        }

        impl Strategy for Weighted {
            type Value = bool;

            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.unit_f64() < self.p
            }
        }

        /// Uniform boolean (upstream `prop::bool::ANY`).
        pub const ANY: Weighted = Weighted { p: 0.5 };
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip the current generated case when its inputs don't satisfy a
/// precondition. Expands to `continue` on the per-case loop, so it is only
/// valid at the top level of a `proptest!` body (which is how the
/// workspace uses it).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone)]
    struct Point {
        x: u32,
        y: u32,
    }

    fn arb_point() -> impl Strategy<Value = Point> {
        (0u32..100, 50u32..60).prop_map(|(x, y)| Point { x, y })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Doc comments and multiple args parse.
        #[test]
        fn ranges_in_bounds(a in 0u64..10, b in 5usize..=9, mut v in prop::collection::vec(0u32..4, 0..6)) {
            prop_assert!(a < 10);
            prop_assert!((5..=9).contains(&b));
            v.push(0);
            prop_assert!(v.iter().all(|&x| x < 4));
            prop_assert!(v.len() <= 6);
        }

        #[test]
        fn mapped_strategies_apply(p in arb_point()) {
            prop_assert!(p.x < 100);
            prop_assert_eq!(p.y / 10, 5);
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn weighted_bool_mixes(flips in prop::collection::vec(prop::bool::weighted(0.5), 64..65)) {
            let trues = flips.iter().filter(|&&b| b).count();
            prop_assert!(trues > 0 && trues < 64, "64 fair flips all agreed");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let gen = |name: &str| {
            let mut rng = crate::test_runner::TestRng::deterministic(name);
            (0..10)
                .map(|_| (0u64..1000).generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen("a"), gen("a"));
        assert_ne!(gen("a"), gen("b"));
    }
}
