//! The experiment driver: replay a message/query mix against an index.
//!
//! Implements the paper's measurement protocol (§VII-A): objects report at
//! frequency `f`, queries arrive at a fixed interval, and the reported
//! metric is the amortised time `(T_u + T_q)/n_q` — update handling plus
//! query processing, divided by the number of queries. Wall-clock time is
//! measured on the host; time the index spent merely *emulating* device
//! work is subtracted and the simulated device time added in its place
//! (the hybrid clock described in DESIGN.md).

use std::sync::Arc;
use std::time::Instant;

use ggrid::api::{MovingObjectIndex, SimCosts};
use ggrid::message::{ObjectId, Timestamp};
use roadnet::graph::{Distance, Graph};
use roadnet::EdgePosition;

use crate::moto::{Moto, MotoConfig};
use crate::queries::QueryStream;

/// Configuration of one scenario run.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    pub moto: MotoConfig,
    pub k: usize,
    /// Interval between queries in ms.
    pub query_interval_ms: u64,
    pub num_queries: usize,
    /// Warm-up horizon before the first query (lets every object report at
    /// least once).
    pub warmup_ms: u64,
    pub query_seed: u64,
    /// Route arrivals through the index's thread-buffered ingest path
    /// (`ingest_buffered` + a `flush_ingest` barrier before each query)
    /// instead of the direct `ingest_batch` group commit. Indexes without a
    /// buffered path fall back to `ingest_batch` via the trait default, so
    /// answers are identical either way.
    pub buffered_ingest: bool,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            moto: MotoConfig::default(),
            k: 16,
            query_interval_ms: 1000,
            num_queries: 10,
            warmup_ms: 1100,
            query_seed: 99,
            buffered_ingest: false,
        }
    }
}

/// Measured outcome of a scenario run.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    pub index_name: &'static str,
    pub messages: usize,
    pub queries: usize,
    /// Wall-clock spent in `handle_update` calls (ns).
    pub update_wall_ns: u64,
    /// Wall-clock spent in `knn` calls (ns).
    pub query_wall_ns: u64,
    /// Host time the index spent emulating device work (ns) — already
    /// included in the wall figures above, to be replaced by `sim`.
    pub emulated_ns: u64,
    /// Simulated device costs accrued during the run.
    pub sim: SimCosts,
    /// Every query's answer, for exactness checks.
    pub answers: Vec<Vec<(ObjectId, Distance)>>,
    /// Reference (ground-truth) answers computed from reported positions.
    pub reference: Vec<Vec<(ObjectId, Distance)>>,
}

impl ScenarioReport {
    /// The hybrid clock total: wall time minus emulation, plus simulated
    /// device time (ns).
    pub fn total_ns(&self) -> u64 {
        (self.update_wall_ns + self.query_wall_ns)
            .saturating_sub(self.emulated_ns)
            .saturating_add(self.sim.total_time().0)
    }

    /// The paper's amortised metric `(T_u + T_q)/n_q` in ns per query.
    pub fn amortized_ns_per_query(&self) -> u64 {
        self.total_ns() / self.queries.max(1) as u64
    }

    /// Fraction of queries whose answer distances match the reference.
    pub fn accuracy(&self) -> f64 {
        if self.answers.is_empty() {
            return 1.0;
        }
        let good = self
            .answers
            .iter()
            .zip(&self.reference)
            .filter(|(a, r)| {
                a.iter().map(|x| x.1).collect::<Vec<_>>()
                    == r.iter().map(|x| x.1).collect::<Vec<_>>()
            })
            .count();
        good as f64 / self.answers.len() as f64
    }
}

/// Replay a scenario against `index`. `t_delta_ms` is the freshness horizon
/// the index was configured with (used for the reference answers).
pub fn run_scenario(
    graph: &Arc<Graph>,
    index: &mut dyn MovingObjectIndex,
    config: &ScenarioConfig,
    t_delta_ms: u64,
    compute_reference: bool,
) -> ScenarioReport {
    let mut moto = Moto::new(graph.clone(), &config.moto);
    let mut stream = QueryStream::new(
        config.k,
        config.query_interval_ms,
        Timestamp(config.warmup_ms),
        config.query_seed,
    );

    let sim_before = index.sim_costs();
    let emu_before = index.emulated_host_ns();
    let mut update_wall_ns = 0u64;
    let mut query_wall_ns = 0u64;
    let mut messages = 0usize;
    let mut answers = Vec::with_capacity(config.num_queries);
    let mut reference = Vec::with_capacity(config.num_queries);

    // Latest reported position per object — the ground truth an exact
    // snapshot index must answer from.
    let mut reported: std::collections::HashMap<ObjectId, (EdgePosition, Timestamp)> =
        std::collections::HashMap::new();

    for _ in 0..config.num_queries {
        let (qt, qpos, k) = stream.draw(graph);
        let batch = moto.advance_to(qt);
        // Everything that arrived since the last query is one group commit
        // (batched ingest); indexes without a batch path fall back to
        // per-message handling via the trait default.
        let updates: Vec<(ObjectId, EdgePosition, Timestamp)> = batch
            .iter()
            .map(|m| (m.object, m.position, m.time))
            .collect();
        let t0 = Instant::now();
        if config.buffered_ingest {
            index.ingest_buffered(&updates);
            // Queries must observe every buffered message; the barrier is
            // part of the measured update cost.
            index.flush_ingest();
        } else {
            index.ingest_batch(&updates);
        }
        update_wall_ns += t0.elapsed().as_nanos() as u64;
        messages += batch.len();
        if compute_reference {
            for m in &batch {
                reported.insert(m.object, (m.position, m.time));
            }
        }

        let t0 = Instant::now();
        let ans = index.knn(qpos, k, qt);
        query_wall_ns += t0.elapsed().as_nanos() as u64;

        if compute_reference {
            let horizon = qt.saturating_sub_ms(t_delta_ms);
            let objs: Vec<(u64, EdgePosition)> = reported
                .iter()
                .filter(|(_, &(_, t))| t >= horizon)
                .map(|(&o, &(p, _))| (o.0, p))
                .collect();
            let want = roadnet::dijkstra::reference_knn(graph, qpos, &objs, k);
            reference.push(want.into_iter().map(|(o, d)| (ObjectId(o), d)).collect());
        }
        answers.push(ans);
    }

    ScenarioReport {
        index_name: index.name(),
        messages,
        queries: config.num_queries,
        update_wall_ns,
        query_wall_ns,
        emulated_ns: index.emulated_host_ns() - emu_before,
        sim: index.sim_costs().since(&sim_before),
        answers,
        reference,
    }
}

/// Configuration of a standing-query (subscription) scenario: a fixed set
/// of riders subscribes once, then the fleet keeps moving and every tick is
/// one `ingest_batch` followed by one `tick_subscriptions`.
#[derive(Clone, Debug)]
pub struct SubscriptionScenarioConfig {
    pub moto: MotoConfig,
    /// Number of standing queries registered after warm-up.
    pub num_subscribers: usize,
    pub k: usize,
    /// Interval between ticks in ms (one group commit per tick).
    pub tick_interval_ms: u64,
    pub num_ticks: usize,
    /// Warm-up horizon before subscribing (lets every object report once).
    pub warmup_ms: u64,
    pub query_seed: u64,
    /// Check every maintained answer against a fresh `knn` after each tick
    /// (exactness audit; adds query work outside the measured totals).
    pub verify: bool,
}

impl Default for SubscriptionScenarioConfig {
    fn default() -> Self {
        Self {
            moto: MotoConfig::default(),
            num_subscribers: 8,
            k: 8,
            tick_interval_ms: 500,
            num_ticks: 10,
            warmup_ms: 1100,
            query_seed: 99,
            verify: false,
        }
    }
}

/// Accumulated outcome of a subscription scenario run.
#[derive(Clone, Debug, Default)]
pub struct SubscriptionScenarioReport {
    pub subscribers: usize,
    pub ticks: usize,
    pub messages: usize,
    /// Sums of the per-tick [`ggrid::subscription::SubscriptionTickReport`]
    /// fields across the run.
    pub dirty_cells: u64,
    pub invalidated: u64,
    pub repaired_delta: u64,
    pub repaired_full: u64,
    pub skipped: u64,
    /// Maintained answers that disagreed with a fresh query (always 0 when
    /// `verify` is off; must be 0 when it is on).
    pub mismatches: u64,
    /// The subscribers' standing positions, for driving an external
    /// re-query-everything baseline over the same workload.
    pub subscriber_positions: Vec<EdgePosition>,
}

impl SubscriptionScenarioReport {
    /// Fraction of (subscription, tick) pairs that needed no re-evaluation.
    pub fn avoided_rate(&self) -> f64 {
        let total = self.skipped + self.invalidated;
        if total == 0 {
            return 0.0;
        }
        self.skipped as f64 / total as f64
    }
}

/// Replay a subscription scenario against a [`GGridServer`]. The server is
/// typed concretely — standing queries are a G-Grid capability, not part of
/// the generic [`MovingObjectIndex`] trait.
pub fn run_subscription_scenario(
    graph: &Arc<Graph>,
    server: &mut ggrid::GGridServer,
    config: &SubscriptionScenarioConfig,
) -> SubscriptionScenarioReport {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    let mut moto = Moto::new(graph.clone(), &config.moto);
    let mut report = SubscriptionScenarioReport::default();

    // Warm-up wave, then register the standing queries.
    let mut now = Timestamp(config.warmup_ms);
    let warm = moto.advance_to(now);
    let updates: Vec<(ObjectId, EdgePosition, Timestamp)> = warm
        .iter()
        .map(|m| (m.object, m.position, m.time))
        .collect();
    server.ingest_batch(&updates);
    report.messages += updates.len();

    let mut rng = SmallRng::seed_from_u64(config.query_seed);
    let mut subs = Vec::with_capacity(config.num_subscribers);
    for _ in 0..config.num_subscribers {
        let q = crate::queries::random_position(graph, &mut rng);
        subs.push((server.subscribe_knn(q, config.k, now), q));
        report.subscriber_positions.push(q);
    }
    report.subscribers = subs.len();

    for _ in 0..config.num_ticks {
        now = Timestamp(now.0 + config.tick_interval_ms);
        let wave = moto.advance_to(now);
        let updates: Vec<(ObjectId, EdgePosition, Timestamp)> = wave
            .iter()
            .map(|m| (m.object, m.position, m.time))
            .collect();
        server.ingest_batch(&updates);
        report.messages += updates.len();

        let tick = server.tick_subscriptions(now);
        report.ticks += 1;
        report.dirty_cells += tick.dirty_cells as u64;
        report.invalidated += tick.invalidated as u64;
        report.repaired_delta += tick.repaired_delta as u64;
        report.repaired_full += tick.repaired_full as u64;
        report.skipped += tick.skipped as u64;

        if config.verify {
            for &(id, q) in &subs {
                let maintained = server
                    .subscription_result(id)
                    .expect("subscription is live")
                    .to_vec();
                if maintained != server.knn(q, config.k, now) {
                    report.mismatches += 1;
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggrid::{GGridConfig, GGridServer};
    use roadnet::gen;

    fn small_scenario() -> ScenarioConfig {
        ScenarioConfig {
            moto: MotoConfig {
                num_objects: 30,
                update_period_ms: 200,
                seed: 3,
                ..Default::default()
            },
            k: 4,
            query_interval_ms: 300,
            num_queries: 6,
            warmup_ms: 250,
            query_seed: 17,
            buffered_ingest: false,
        }
    }

    #[test]
    fn ggrid_scenario_is_exact() {
        let graph = Arc::new(gen::toy(13));
        let mut server = GGridServer::new(
            (*graph).clone(),
            GGridConfig {
                eta: 4,
                bucket_capacity: 16,
                ..Default::default()
            },
        );
        let report = run_scenario(&graph, &mut server, &small_scenario(), 10_000, true);
        assert_eq!(report.queries, 6);
        assert!(report.messages > 0);
        assert_eq!(report.accuracy(), 1.0, "G-Grid answers must be exact");
        assert!(report.total_ns() > 0);
    }

    #[test]
    fn buffered_scenario_matches_batched() {
        let graph = Arc::new(gen::toy(13));
        let config = GGridConfig {
            eta: 4,
            bucket_capacity: 16,
            ..Default::default()
        };
        let mut batched = GGridServer::new((*graph).clone(), config.clone());
        let mut buffered = GGridServer::new((*graph).clone(), config);
        let base = small_scenario();
        let a = run_scenario(&graph, &mut batched, &base, 10_000, true);
        let cfg = ScenarioConfig {
            buffered_ingest: true,
            ..base
        };
        let b = run_scenario(&graph, &mut buffered, &cfg, 10_000, true);
        assert_eq!(a.accuracy(), 1.0);
        assert_eq!(b.accuracy(), 1.0);
        assert_eq!(
            a.answers, b.answers,
            "buffered ingest must not change answers"
        );
    }

    #[test]
    fn subscription_scenario_is_exact() {
        let graph = Arc::new(gen::toy(13));
        let mut server = GGridServer::new(
            (*graph).clone(),
            GGridConfig {
                eta: 4,
                bucket_capacity: 16,
                ..Default::default()
            },
        );
        let config = SubscriptionScenarioConfig {
            moto: MotoConfig {
                num_objects: 30,
                update_period_ms: 200,
                seed: 3,
                ..Default::default()
            },
            num_subscribers: 4,
            k: 4,
            tick_interval_ms: 300,
            num_ticks: 8,
            warmup_ms: 250,
            query_seed: 17,
            verify: true,
        };
        let report = run_subscription_scenario(&graph, &mut server, &config);
        assert_eq!(report.subscribers, 4);
        assert_eq!(report.ticks, 8);
        assert!(report.messages > 0);
        assert_eq!(report.mismatches, 0, "maintained answers must stay exact");
        assert_eq!(
            report.skipped + report.invalidated,
            (report.subscribers * report.ticks) as u64
        );
        assert_eq!(server.subscriptions_active(), 4);
    }

    #[test]
    fn sparse_waves_skip_untouched_subscriptions() {
        // Dense uniform objects give every rider a tight guard; a long
        // reporting period means each tick dirties only a few cells, so
        // most standing queries must be skipped outright.
        let graph = Arc::new(gen::grid_city(&gen::GridCityParams {
            rows: 12,
            cols: 12,
            edge_ratio: 2.5,
            weight_range: (5, 40),
            seed: 21,
        }));
        let mut server = GGridServer::new(
            (*graph).clone(),
            GGridConfig {
                eta: 4,
                // Slow reporters must stay live, else guards balloon.
                t_delta_ms: 1_000_000,
                ..Default::default()
            },
        );
        let config = SubscriptionScenarioConfig {
            moto: MotoConfig {
                num_objects: 300,
                update_period_ms: 40_000,
                seed: 9,
                ..Default::default()
            },
            num_subscribers: 12,
            k: 3,
            tick_interval_ms: 250,
            num_ticks: 6,
            warmup_ms: 40_500,
            query_seed: 5,
            verify: true,
        };
        let report = run_subscription_scenario(&graph, &mut server, &config);
        assert_eq!(report.mismatches, 0);
        assert!(
            report.skipped > report.invalidated,
            "sparse waves should skip most subscriptions: {report:?}"
        );
    }

    #[test]
    fn report_math_consistent() {
        let graph = Arc::new(gen::toy(13));
        let mut server = GGridServer::new(
            (*graph).clone(),
            GGridConfig {
                eta: 4,
                ..Default::default()
            },
        );
        let report = run_scenario(&graph, &mut server, &small_scenario(), 10_000, false);
        assert!(report.reference.is_empty());
        assert_eq!(report.answers.len(), report.queries);
        assert_eq!(
            report.amortized_ns_per_query(),
            report.total_ns() / report.queries as u64
        );
    }
}
