//! # workload — moving-object traces and query streams
//!
//! The paper generates its moving objects with MOTO \[10\], an open-source
//! trace generator, and issues queries at random locations with a fixed
//! inter-query interval (§VII-A). This crate provides deterministic
//! equivalents:
//!
//! * [`moto`] — network-constrained object movement: each object walks the
//!   road graph at an individual speed and reports `⟨o, e, d, t⟩` messages
//!   with period `1/f`, staggered across objects like a real fleet.
//! * [`queries`] — uniformly random query positions on edges, fixed
//!   inter-query interval, configurable `k`.
//! * [`hotspot`] — update waves confined to a window of z-order grid
//!   cells (skewed load for the multi-device sharding experiments).
//! * [`scenario`] — the experiment driver: interleaves messages and queries
//!   against any [`ggrid::api::MovingObjectIndex`], measures wall-clock
//!   update/query time, folds in simulated device time, and reports the
//!   paper's amortised `(T_u + T_q)/n_q` metric. Also computes reference
//!   answers for exactness checks.

pub mod hotspot;
pub mod moto;
pub mod openloop;
pub mod queries;
pub mod scenario;

pub use hotspot::CellWindowSampler;
pub use moto::{Moto, MotoConfig, UpdateMessage};
pub use openloop::{poisson_arrivals, split_round_robin, Arrival, OpenLoopConfig};
pub use queries::{random_position, QueryStream};
pub use scenario::{
    run_scenario, run_subscription_scenario, ScenarioConfig, ScenarioReport,
    SubscriptionScenarioConfig, SubscriptionScenarioReport,
};
