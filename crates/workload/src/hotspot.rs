//! Skewed-hotspot update workloads (multi-device sharding experiments).
//!
//! Real fleets bunch up: rush hour concentrates position updates in a
//! small geographic window while the rest of the network idles. This
//! module samples update positions confined to a contiguous window of
//! z-order grid-cell indices — exactly the unit the sharded server
//! partitions by — so a window that lands inside one shard's range turns
//! that shard hot and leaves its peers cold. Pair it with
//! [`ggrid::GGridServer::rebalance_shards`] to exercise busy-time
//! rebalancing, or widen the window to the whole grid for a uniform
//! control.

use ggrid::grid::GraphGrid;
use ggrid::message::{ObjectId, Timestamp};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use roadnet::graph::EdgeId;
use roadnet::EdgePosition;
use std::ops::Range;

/// Samples valid edge positions restricted to a half-open window of
/// z-order cell indices. Construction is one pass over the edge set; each
/// draw is O(1).
pub struct CellWindowSampler {
    /// Every edge whose source cell's z-index lies inside the window,
    /// paired with its weight (so draws need no graph access).
    edges: Vec<(EdgeId, u32)>,
    rng: SmallRng,
}

impl CellWindowSampler {
    /// Index every edge whose owning cell falls in `window`. Panics if the
    /// window is empty of edges (e.g. it covers only unused z-values); the
    /// caller should widen it.
    pub fn new(grid: &GraphGrid, window: Range<u32>, seed: u64) -> Self {
        assert!(window.start < window.end, "empty cell window");
        let graph = grid.graph();
        let edges: Vec<(EdgeId, u32)> = (0..graph.num_edges() as u32)
            .map(EdgeId)
            .filter(|&e| window.contains(&(grid.cell_of_edge(e).index() as u32)))
            .map(|e| (e, graph.edge(e).weight))
            .collect();
        assert!(
            !edges.is_empty(),
            "cell window {window:?} contains no edges; widen it"
        );
        Self {
            edges,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// A sampler over the whole grid (the uniform control workload).
    pub fn whole_grid(grid: &GraphGrid, seed: u64) -> Self {
        Self::new(grid, 0..grid.num_cells() as u32, seed)
    }

    /// Number of distinct edges the window covers.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// A uniformly random valid position on a random in-window edge.
    pub fn position(&mut self) -> EdgePosition {
        let (edge, weight) = self.edges[self.rng.gen_range(0..self.edges.len())];
        EdgePosition::new(edge, self.rng.gen_range(0..=weight))
    }

    /// One update wave at `t`: objects `base .. base + count` each report
    /// one in-window position. Feed the result straight to
    /// [`ggrid::GGridServer::ingest_batch`].
    pub fn wave(
        &mut self,
        base: u32,
        count: u32,
        t: Timestamp,
    ) -> Vec<(ObjectId, EdgePosition, Timestamp)> {
        (base..base + count)
            .map(|o| (ObjectId(o as u64), self.position(), t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::gen;
    use std::sync::Arc;

    fn grid() -> GraphGrid {
        // Small cell capacity so the toy graph splits into several cells.
        GraphGrid::build(Arc::new(gen::toy(21)), 8, 64)
    }

    #[test]
    fn positions_confined_to_window() {
        let g = grid();
        let n = g.num_cells() as u32;
        assert!(n >= 2, "test grid must have multiple cells");
        let window = 0..n / 2;
        let mut s = CellWindowSampler::new(&g, window.clone(), 7);
        for _ in 0..200 {
            let p = s.position();
            assert!(p.is_valid(g.graph()));
            let cell = g.cell_of_edge(p.edge).index() as u32;
            assert!(window.contains(&cell), "position escaped the window");
        }
    }

    #[test]
    fn whole_grid_covers_all_edges() {
        let g = grid();
        let s = CellWindowSampler::whole_grid(&g, 3);
        assert_eq!(s.num_edges(), g.graph().num_edges());
    }

    #[test]
    fn waves_are_deterministic() {
        let g = grid();
        let mut a = CellWindowSampler::whole_grid(&g, 11);
        let mut b = CellWindowSampler::whole_grid(&g, 11);
        assert_eq!(a.wave(0, 50, Timestamp(5)), b.wave(0, 50, Timestamp(5)));
    }

    #[test]
    #[should_panic(expected = "empty cell window")]
    fn empty_window_rejected() {
        let g = grid();
        CellWindowSampler::new(&g, 3..3, 0);
    }
}
