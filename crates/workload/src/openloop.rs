//! Open-loop Poisson arrivals for the serving-loop benchmarks.
//!
//! Closed-loop drivers (issue, wait, issue) can never overload a server —
//! the arrival rate collapses to the service rate, hiding exactly the
//! queueing behaviour a p99 figure is about. This module generates an
//! **open-loop** schedule instead: queries and ingest waves arrive as two
//! independent Poisson processes on the modeled-nanosecond clock,
//! regardless of how fast the server drains them. Inter-arrival gaps are
//! sampled as `-ln(u)/λ` (the shim [`rand`] has no distribution types),
//! so the schedule is deterministic per seed.
//!
//! Query timestamps are quantized to [`OpenLoopConfig::now_quantum_ns`]
//! so that consecutive arrivals share a [`Timestamp`] and can legally
//! share a device batch (`knn_batch` takes one `now` per batch); ingest
//! messages carry the same quantized clock, keeping every event stream
//! monotone.

use ggrid::message::{ObjectId, Timestamp};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use roadnet::graph::Graph;
use roadnet::EdgePosition;

use crate::queries::random_position;

/// Knobs of the open-loop arrival schedule.
#[derive(Clone, Copy, Debug)]
pub struct OpenLoopConfig {
    pub seed: u64,
    /// Queries to generate.
    pub queries: usize,
    /// Mean query arrival rate, in arrivals per modeled second.
    pub query_rate_hz: f64,
    /// Ingest-wave arrival rate, in waves per modeled second (0 = none).
    pub ingest_rate_hz: f64,
    /// Location updates per ingest wave.
    pub ingest_wave: usize,
    /// Object-id universe the waves draw from.
    pub objects: u64,
    /// k of every generated query.
    pub k: usize,
    /// Timestamp quantum: arrivals within one quantum share a `now` (in
    /// modeled ns; one `Timestamp` unit is one quantum).
    pub now_quantum_ns: u64,
    /// Timestamp offset so generated events sort after any seed data.
    pub base_ms: u64,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        Self {
            seed: 0x9E37,
            queries: 256,
            query_rate_hz: 50_000.0,
            ingest_rate_hz: 1_000.0,
            ingest_wave: 32,
            objects: 1_000,
            k: 8,
            now_quantum_ns: 10_000_000,
            base_ms: 1_000,
        }
    }
}

/// One open-loop arrival on the modeled clock.
#[derive(Clone, Debug)]
pub enum Arrival {
    Query {
        at_ns: u64,
        q: EdgePosition,
        k: usize,
        now: Timestamp,
    },
    Ingest {
        at_ns: u64,
        updates: Vec<(ObjectId, EdgePosition, Timestamp)>,
    },
}

impl Arrival {
    pub fn at_ns(&self) -> u64 {
        match self {
            Arrival::Query { at_ns, .. } | Arrival::Ingest { at_ns, .. } => *at_ns,
        }
    }
}

/// Exponential inter-arrival gap in ns for rate `hz`, from one uniform
/// draw (inverse CDF; the draw is clamped away from 0 so `ln` is finite).
fn exp_gap_ns(rng: &mut SmallRng, hz: f64) -> u64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    ((-u.ln() / hz) * 1e9).round() as u64
}

/// Generate the merged arrival schedule: `cfg.queries` Poisson query
/// arrivals interleaved with Poisson ingest waves over the same horizon,
/// sorted by arrival stamp. Deterministic per `cfg.seed`.
pub fn poisson_arrivals(graph: &Graph, cfg: &OpenLoopConfig) -> Vec<Arrival> {
    assert!(cfg.query_rate_hz > 0.0, "query rate must be positive");
    assert!(cfg.now_quantum_ns > 0, "now quantum must be positive");
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let stamp = |at_ns: u64| Timestamp(cfg.base_ms + at_ns / cfg.now_quantum_ns);
    let mut out = Vec::with_capacity(cfg.queries * 2);

    let mut t = 0u64;
    for _ in 0..cfg.queries {
        t += exp_gap_ns(&mut rng, cfg.query_rate_hz);
        out.push(Arrival::Query {
            at_ns: t,
            q: random_position(graph, &mut rng),
            k: cfg.k,
            now: stamp(t),
        });
    }
    let horizon = t;

    if cfg.ingest_rate_hz > 0.0 && cfg.ingest_wave > 0 {
        let mut t = 0u64;
        loop {
            t += exp_gap_ns(&mut rng, cfg.ingest_rate_hz);
            if t > horizon {
                break;
            }
            let now = stamp(t);
            let updates = (0..cfg.ingest_wave)
                .map(|_| {
                    let o = ObjectId(rng.gen_range(0..cfg.objects.max(1)));
                    (o, random_position(graph, &mut rng), now)
                })
                .collect();
            out.push(Arrival::Ingest { at_ns: t, updates });
        }
    }

    // Merge the two processes into one stamp-ordered schedule. Queries
    // sort before ingest at equal stamps (stable sort preserves the
    // generation order within each process).
    out.sort_by_key(|a| a.at_ns());
    out
}

/// Round-robin the schedule across `n` client lanes, preserving each
/// lane's arrival order — the shape [`ggrid::serve::ServeClient`] expects
/// (monotone stamps per client).
pub fn split_round_robin(arrivals: Vec<Arrival>, n: usize) -> Vec<Vec<Arrival>> {
    assert!(n >= 1);
    let mut lanes: Vec<Vec<Arrival>> = (0..n).map(|_| Vec::new()).collect();
    for (i, a) in arrivals.into_iter().enumerate() {
        lanes[i % n].push(a);
    }
    lanes
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::gen;

    #[test]
    fn schedule_is_sorted_and_deterministic() {
        let g = gen::toy(7);
        let cfg = OpenLoopConfig {
            queries: 100,
            ..Default::default()
        };
        let a = poisson_arrivals(&g, &cfg);
        let b = poisson_arrivals(&g, &cfg);
        assert_eq!(a.len(), b.len());
        assert!(a.windows(2).all(|w| w[0].at_ns() <= w[1].at_ns()));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at_ns(), y.at_ns());
        }
        assert_eq!(
            a.iter()
                .filter(|x| matches!(x, Arrival::Query { .. }))
                .count(),
            100
        );
    }

    #[test]
    fn rate_controls_density() {
        let g = gen::toy(7);
        let slow = poisson_arrivals(
            &g,
            &OpenLoopConfig {
                query_rate_hz: 1_000.0,
                ingest_rate_hz: 0.0,
                queries: 200,
                ..Default::default()
            },
        );
        let fast = poisson_arrivals(
            &g,
            &OpenLoopConfig {
                query_rate_hz: 100_000.0,
                ingest_rate_hz: 0.0,
                queries: 200,
                ..Default::default()
            },
        );
        // ~100x rate ratio → ~100x horizon ratio (Poisson noise leaves
        // plenty of margin at 200 samples).
        let (hs, hf) = (slow.last().unwrap().at_ns(), fast.last().unwrap().at_ns());
        assert!(hs > hf * 20, "slow horizon {hs} vs fast {hf}");
    }

    #[test]
    fn quantized_timestamps_shared_within_quantum() {
        let g = gen::toy(7);
        let cfg = OpenLoopConfig {
            query_rate_hz: 1e6,
            ingest_rate_hz: 0.0,
            queries: 50,
            now_quantum_ns: u64::MAX,
            ..Default::default()
        };
        let a = poisson_arrivals(&g, &cfg);
        let nows: Vec<u64> = a
            .iter()
            .filter_map(|x| match x {
                Arrival::Query { now, .. } => Some(now.0),
                _ => None,
            })
            .collect();
        assert!(nows.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn round_robin_preserves_lane_order() {
        let g = gen::toy(7);
        let a = poisson_arrivals(
            &g,
            &OpenLoopConfig {
                queries: 64,
                ..Default::default()
            },
        );
        let lanes = split_round_robin(a, 5);
        assert_eq!(lanes.len(), 5);
        for lane in &lanes {
            assert!(lane.windows(2).all(|w| w[0].at_ns() <= w[1].at_ns()));
        }
    }
}
