//! MOTO-style network-constrained moving-object traces.
//!
//! Objects walk the road network: each travels at an individual speed
//! (weight units per second) and, on reaching the end of an edge, continues
//! on a random outgoing edge. Every object reports its position with period
//! `1/f`; report times are staggered across the fleet so the server sees a
//! smooth message stream, as with real vehicles. Deterministic in the seed.

use std::sync::Arc;

use ggrid::message::{ObjectId, Timestamp};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use roadnet::graph::{EdgeId, Graph};
use roadnet::EdgePosition;

/// One location-update message of the workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateMessage {
    pub object: ObjectId,
    pub position: EdgePosition,
    pub time: Timestamp,
}

/// Where objects start out.
#[derive(Clone, Debug, PartialEq)]
pub enum Placement {
    /// Uniform over edges (the paper's setting).
    Uniform,
    /// Clustered around `centers` random hotspots, within `radius_hops`
    /// BFS hops — models rush-hour downtowns, where the lazy index shines
    /// (queries hit dense, small regions).
    Hotspot { centers: usize, radius_hops: u32 },
}

/// Configuration of a [`Moto`] fleet.
#[derive(Clone, Debug)]
pub struct MotoConfig {
    pub num_objects: usize,
    /// Travel speed range in weight units per second.
    pub speed_range: (f64, f64),
    /// Reporting period per object in ms (`1000 / f`).
    pub update_period_ms: u64,
    pub seed: u64,
    pub placement: Placement,
}

impl Default for MotoConfig {
    fn default() -> Self {
        Self {
            num_objects: 100,
            speed_range: (20.0, 120.0),
            update_period_ms: 1000,
            seed: 7,
            placement: Placement::Uniform,
        }
    }
}

struct MovingObject {
    position: EdgePosition,
    /// Precise sub-unit offset along the edge.
    exact_offset: f64,
    speed_per_ms: f64,
    next_report: Timestamp,
    last_moved: Timestamp,
    /// Per-object RNG so traces are independent of interleaving.
    rng: SmallRng,
}

/// A fleet of moving objects emitting timestamped update messages.
pub struct Moto {
    graph: Arc<Graph>,
    objects: Vec<MovingObject>,
    period_ms: u64,
    now: Timestamp,
}

impl Moto {
    pub fn new(graph: Arc<Graph>, config: &MotoConfig) -> Self {
        assert!(config.num_objects >= 1);
        assert!(config.update_period_ms >= 1);
        assert!(
            config.speed_range.0 > 0.0 && config.speed_range.0 <= config.speed_range.1,
            "invalid speed range"
        );
        assert!(graph.num_edges() > 0, "graph has no edges to drive on");
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let spawn_edges: Vec<EdgeId> = match config.placement {
            Placement::Uniform => Vec::new(),
            Placement::Hotspot {
                centers,
                radius_hops,
            } => hotspot_edges(&graph, centers.max(1), radius_hops, &mut rng),
        };
        let objects = (0..config.num_objects)
            .map(|i| {
                let edge = if spawn_edges.is_empty() {
                    EdgeId(rng.gen_range(0..graph.num_edges() as u32))
                } else {
                    spawn_edges[rng.gen_range(0..spawn_edges.len())]
                };
                let w = graph.edge(edge).weight;
                let offset = rng.gen_range(0..=w);
                let speed = rng.gen_range(config.speed_range.0..=config.speed_range.1);
                // Stagger first reports uniformly across one period.
                let first = (i as u64 * config.update_period_ms) / config.num_objects as u64;
                MovingObject {
                    position: EdgePosition::new(edge, offset),
                    exact_offset: offset as f64,
                    speed_per_ms: speed / 1000.0,
                    next_report: Timestamp(first),
                    last_moved: Timestamp(0),
                    rng: SmallRng::seed_from_u64(
                        config.seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    ),
                }
            })
            .collect();
        Self {
            graph,
            objects,
            period_ms: config.update_period_ms,
            now: Timestamp(0),
        }
    }

    pub fn now(&self) -> Timestamp {
        self.now
    }

    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// Advance simulated time to `t`, returning every message due in
    /// `(now, t]` in chronological order. (The very first call also emits
    /// the fleet's initial reports scheduled at time 0.)
    pub fn advance_to(&mut self, t: Timestamp) -> Vec<UpdateMessage> {
        assert!(t >= self.now, "time cannot go backwards");
        let mut out = Vec::new();
        for (i, _) in (0..self.objects.len()).enumerate() {
            loop {
                let due = self.objects[i].next_report;
                if due > t {
                    break;
                }
                self.move_object(i, due);
                let obj = &mut self.objects[i];
                out.push(UpdateMessage {
                    object: ObjectId(i as u64),
                    position: obj.position,
                    time: due,
                });
                obj.next_report = Timestamp(due.0 + self.period_ms);
            }
        }
        out.sort_by_key(|m| (m.time, m.object));
        self.now = t;
        out
    }

    /// Move object `i` along its walk up to time `t`.
    fn move_object(&mut self, i: usize, t: Timestamp) {
        let (mut edge, mut exact, speed, last) = {
            let o = &self.objects[i];
            (
                o.position.edge,
                o.exact_offset,
                o.speed_per_ms,
                o.last_moved,
            )
        };
        let mut budget = speed * (t.0.saturating_sub(last.0)) as f64;
        loop {
            let w = self.graph.edge(edge).weight as f64;
            let remaining = w - exact;
            if budget < remaining {
                exact += budget;
                break;
            }
            budget -= remaining;
            // Continue on a random outgoing edge of the destination.
            let dest = self.graph.edge(edge).dest;
            let degree = self.graph.out_degree(dest);
            if degree == 0 {
                exact = w; // dead end: park at the edge's end
                break;
            }
            let pick = self.objects[i].rng.gen_range(0..degree);
            edge = self
                .graph
                .out_edges(dest)
                .nth(pick)
                .expect("degree-checked pick");
            exact = 0.0;
        }
        let o = &mut self.objects[i];
        o.position = EdgePosition::new(edge, exact.floor() as u32);
        o.exact_offset = exact;
        o.last_moved = t;
        debug_assert!(o.position.is_valid(&self.graph));
    }
}

/// Edges within `radius_hops` BFS hops of `centers` random vertices.
fn hotspot_edges(
    graph: &Graph,
    centers: usize,
    radius_hops: u32,
    rng: &mut SmallRng,
) -> Vec<EdgeId> {
    use std::collections::VecDeque;
    let mut edges = Vec::new();
    let mut seen = vec![false; graph.num_vertices()];
    for _ in 0..centers {
        let start = roadnet::VertexId(rng.gen_range(0..graph.num_vertices() as u32));
        let mut queue = VecDeque::new();
        queue.push_back((start, 0u32));
        seen[start.index()] = true;
        while let Some((v, hops)) = queue.pop_front() {
            for e in graph.out_edges(v) {
                edges.push(e);
                let dest = graph.edge(e).dest;
                if hops < radius_hops && !seen[dest.index()] {
                    seen[dest.index()] = true;
                    queue.push_back((dest, hops + 1));
                }
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::gen;

    fn fleet(n: usize, period: u64, seed: u64) -> Moto {
        Moto::new(
            Arc::new(gen::toy(5)),
            &MotoConfig {
                num_objects: n,
                update_period_ms: period,
                seed,
                ..Default::default()
            },
        )
    }

    #[test]
    fn emits_messages_at_period() {
        let mut m = fleet(10, 100, 1);
        let msgs = m.advance_to(Timestamp(1000));
        // Each object reports roughly every 100ms over 1s → ~10 each.
        let per_object = msgs.len() as f64 / 10.0;
        assert!((9.0..=11.0).contains(&per_object), "{per_object}");
    }

    #[test]
    fn messages_are_chronological() {
        let mut m = fleet(20, 70, 2);
        let msgs = m.advance_to(Timestamp(2000));
        for w in msgs.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn positions_valid_on_graph() {
        let g = Arc::new(gen::toy(5));
        let mut m = Moto::new(
            g.clone(),
            &MotoConfig {
                num_objects: 25,
                update_period_ms: 50,
                seed: 3,
                ..Default::default()
            },
        );
        for msg in m.advance_to(Timestamp(3000)) {
            assert!(msg.position.is_valid(&g), "{msg:?}");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = fleet(15, 100, 42).advance_to(Timestamp(1500));
        let b = fleet(15, 100, 42).advance_to(Timestamp(1500));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = fleet(15, 100, 1).advance_to(Timestamp(1500));
        let b = fleet(15, 100, 2).advance_to(Timestamp(1500));
        assert_ne!(a, b);
    }

    #[test]
    fn objects_actually_move() {
        let mut m = fleet(5, 100, 9);
        let early = m.advance_to(Timestamp(100));
        let late = m.advance_to(Timestamp(5000));
        let first: Vec<_> = early.iter().filter(|x| x.object == ObjectId(0)).collect();
        let last: Vec<_> = late.iter().filter(|x| x.object == ObjectId(0)).collect();
        assert!(!first.is_empty() && !last.is_empty());
        assert_ne!(
            first.first().unwrap().position,
            last.last().unwrap().position,
            "object 0 never moved"
        );
    }

    #[test]
    fn staggered_first_reports() {
        let mut m = fleet(10, 1000, 4);
        let msgs = m.advance_to(Timestamp(999));
        // All 10 objects report within the first period, at distinct times.
        let mut objects: Vec<u64> = msgs.iter().map(|x| x.object.0).collect();
        objects.sort_unstable();
        objects.dedup();
        assert_eq!(objects.len(), 10);
        let times: std::collections::HashSet<u64> = msgs.iter().map(|x| x.time.0).collect();
        assert!(times.len() > 1, "reports must be staggered");
    }

    #[test]
    fn incremental_advance_equals_single_advance() {
        let mut a = fleet(8, 130, 6);
        let mut one = a.advance_to(Timestamp(700));
        one.extend(a.advance_to(Timestamp(1400)));
        let mut b = fleet(8, 130, 6);
        let all = b.advance_to(Timestamp(1400));
        assert_eq!(one, all);
    }

    #[test]
    fn hotspot_placement_clusters_objects() {
        let g = Arc::new(gen::grid_city(&gen::GridCityParams {
            rows: 16,
            cols: 16,
            seed: 2,
            ..Default::default()
        }));
        let mut m = Moto::new(
            g.clone(),
            &MotoConfig {
                num_objects: 100,
                update_period_ms: 100,
                seed: 5,
                placement: Placement::Hotspot {
                    centers: 2,
                    radius_hops: 2,
                },
                ..Default::default()
            },
        );
        let msgs = m.advance_to(Timestamp(99));
        let edges: std::collections::HashSet<u32> =
            msgs.iter().map(|x| x.position.edge.0).collect();
        // 100 objects on a 640-edge graph: uniform placement would touch
        // ~90 distinct edges; two 2-hop hotspots confine them far more.
        assert!(
            edges.len() < 60,
            "placement not clustered: {} edges",
            edges.len()
        );
    }

    #[test]
    fn hotspot_positions_valid() {
        let g = Arc::new(gen::toy(9));
        let mut m = Moto::new(
            g.clone(),
            &MotoConfig {
                num_objects: 30,
                update_period_ms: 50,
                placement: Placement::Hotspot {
                    centers: 1,
                    radius_hops: 1,
                },
                ..Default::default()
            },
        );
        for msg in m.advance_to(Timestamp(500)) {
            assert!(msg.position.is_valid(&g));
        }
    }

    #[test]
    #[should_panic(expected = "time cannot go backwards")]
    fn rewind_rejected() {
        let mut m = fleet(2, 100, 1);
        m.advance_to(Timestamp(500));
        m.advance_to(Timestamp(100));
    }
}
