//! Query-workload generation (§VII-A: random query locations, fixed
//! inter-query interval).

use ggrid::message::Timestamp;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use roadnet::graph::{EdgeId, Graph};
use roadnet::EdgePosition;

/// A uniformly random valid position on a random edge.
pub fn random_position(graph: &Graph, rng: &mut impl Rng) -> EdgePosition {
    assert!(graph.num_edges() > 0);
    let edge = EdgeId(rng.gen_range(0..graph.num_edges() as u32));
    let offset = rng.gen_range(0..=graph.edge(edge).weight);
    EdgePosition::new(edge, offset)
}

/// A deterministic stream of kNN queries at a fixed interval.
pub struct QueryStream {
    rng: SmallRng,
    interval_ms: u64,
    next: Timestamp,
    pub k: usize,
}

impl QueryStream {
    pub fn new(k: usize, interval_ms: u64, start: Timestamp, seed: u64) -> Self {
        assert!(k >= 1 && interval_ms >= 1);
        Self {
            rng: SmallRng::seed_from_u64(seed),
            interval_ms,
            next: Timestamp(start.0 + interval_ms),
            k,
        }
    }

    /// Time of the next query.
    pub fn next_time(&self) -> Timestamp {
        self.next
    }

    /// Draw the next query: `(issue time, position, k)`.
    pub fn draw(&mut self, graph: &Graph) -> (Timestamp, EdgePosition, usize) {
        let t = self.next;
        self.next = Timestamp(t.0 + self.interval_ms);
        (t, random_position(graph, &mut self.rng), self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::gen;

    #[test]
    fn positions_valid() {
        let g = gen::toy(8);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..200 {
            assert!(random_position(&g, &mut rng).is_valid(&g));
        }
    }

    #[test]
    fn stream_advances_by_interval() {
        let g = gen::toy(8);
        let mut s = QueryStream::new(4, 250, Timestamp(1000), 5);
        let (t1, _, k) = s.draw(&g);
        let (t2, _, _) = s.draw(&g);
        assert_eq!(t1, Timestamp(1250));
        assert_eq!(t2, Timestamp(1500));
        assert_eq!(k, 4);
    }

    #[test]
    fn stream_deterministic() {
        let g = gen::toy(8);
        let mut a = QueryStream::new(2, 100, Timestamp(0), 9);
        let mut b = QueryStream::new(2, 100, Timestamp(0), 9);
        for _ in 0..10 {
            assert_eq!(a.draw(&g), b.draw(&g));
        }
    }

    #[test]
    fn positions_spread_over_edges() {
        let g = gen::toy(8);
        let mut s = QueryStream::new(1, 1, Timestamp(0), 11);
        let edges: std::collections::HashSet<u32> = (0..100).map(|_| s.draw(&g).1.edge.0).collect();
        assert!(edges.len() > 20, "queries should cover many edges");
    }
}
