//! Property-based tests of the road-network substrate.

use proptest::prelude::*;
use roadnet::dijkstra::{position_to_position, DijkstraEngine, SearchBounds};
use roadnet::gen::{self, GridCityParams};
use roadnet::graph::{Graph, VertexId, INFINITY};
use roadnet::partition::{hierarchical_bisection, partition_with_capacity};
use roadnet::zorder;
use roadnet::{EdgeId, EdgePosition};

fn arb_city() -> impl Strategy<Value = Graph> {
    (3u32..10, 3u32..10, 0u64..1000, 20u32..29).prop_map(|(rows, cols, seed, ratio10)| {
        gen::grid_city(&GridCityParams {
            rows,
            cols,
            edge_ratio: ratio10 as f64 / 10.0,
            weight_range: (1, 50),
            seed,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn zorder_round_trips(x in 0u32..65536, y in 0u32..65536) {
        prop_assert_eq!(zorder::decode(zorder::encode(x, y)), (x, y));
    }

    #[test]
    fn generated_cities_strongly_connected(g in arb_city()) {
        let mut d = DijkstraEngine::new(&g);
        d.run_from_vertex(VertexId(0));
        for v in g.vertices() {
            prop_assert!(d.distance(v) < INFINITY);
        }
    }

    #[test]
    fn triangle_inequality(g in arb_city(), s in 0u32..64, m in 0u32..64, t in 0u32..64) {
        let n = g.num_vertices() as u32;
        let (s, m, t) = (VertexId(s % n), VertexId(m % n), VertexId(t % n));
        let mut d = DijkstraEngine::new(&g);
        d.run_from_vertex(s);
        let st = d.distance(t);
        let sm = d.distance(m);
        d.run_from_vertex(m);
        let mt = d.distance(t);
        prop_assert!(st <= sm.saturating_add(mt), "dist({s:?},{t:?}) > via {m:?}");
    }

    #[test]
    fn bounded_search_agrees_with_full(g in arb_city(), s in 0u32..64, radius in 1u64..100) {
        let s = VertexId(s % g.num_vertices() as u32);
        let mut full = DijkstraEngine::new(&g);
        full.run_from_vertex(s);
        let mut bounded = DijkstraEngine::new(&g);
        bounded.run_seeded(&[(s, 0)], SearchBounds::radius(radius));
        for &v in bounded.settled() {
            prop_assert_eq!(bounded.distance(v), full.distance(v));
        }
        // Everything within the radius is settled.
        for v in g.vertices() {
            if full.distance(v) < radius {
                prop_assert!(bounded.settled().contains(&v), "{v:?} missed");
            }
        }
    }

    #[test]
    fn position_distance_non_negative_and_zero_to_self(
        g in arb_city(), e in 0u32..200, off_frac in 0u32..100,
    ) {
        let e = EdgeId(e % g.num_edges() as u32);
        let off = off_frac % (g.edge(e).weight + 1);
        let p = EdgePosition::new(e, off);
        prop_assert_eq!(position_to_position(&g, p, p), 0);
    }

    #[test]
    fn partition_capacity_and_cover(g in arb_city(), cap in 1usize..20) {
        let p = partition_with_capacity(&g, cap);
        let sizes = p.part_sizes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), g.num_vertices());
        for s in sizes {
            prop_assert!(s <= cap);
        }
        for &a in &p.assignment {
            prop_assert!(a < p.num_parts);
        }
    }

    #[test]
    fn bisection_deterministic_and_balanced(g in arb_city(), depth in 0u32..4) {
        let a = hierarchical_bisection(&g, depth);
        let b = hierarchical_bisection(&g, depth);
        prop_assert_eq!(&a.assignment, &b.assignment);
        let sizes = a.part_sizes();
        let (min, max) = (
            sizes.iter().min().copied().unwrap_or(0),
            sizes.iter().max().copied().unwrap_or(0),
        );
        // Bisection drift stays small at shallow depths.
        prop_assert!(max - min <= depth as usize * 2 + 1, "sizes {sizes:?}");
    }

    #[test]
    fn dimacs_round_trip(g in arb_city()) {
        let mut buf = Vec::new();
        roadnet::dimacs::write_gr(&g, &mut buf).unwrap();
        let g2 = roadnet::dimacs::read_gr(buf.as_slice()).unwrap();
        prop_assert_eq!(g.num_vertices(), g2.num_vertices());
        prop_assert_eq!(g.num_edges(), g2.num_edges());
        for e in g.edge_ids() {
            prop_assert_eq!(g.edge(e), g2.edge(e));
        }
    }

    /// The multi-source bounded search equals the pointwise minimum of the
    /// per-source bounded searches: same settled set, same distances —
    /// including ties, where several sources reach a vertex at the same
    /// cost and either one is a valid witness for the shared minimum.
    #[test]
    fn multi_source_equals_pointwise_min(
        g in arb_city(),
        raw_seeds in prop::collection::vec((0u32..64, 0u64..40), 1..8),
        radius in 1u64..120,
    ) {
        let n = g.num_vertices() as u32;
        // Dedup by vertex keeping the smallest cost, like refinement's
        // unresolved set (one D[v] per vertex).
        let mut best: std::collections::HashMap<u32, u64> = Default::default();
        for (v, c) in raw_seeds {
            let v = v % n;
            let e = best.entry(v).or_insert(u64::MAX);
            *e = (*e).min(c);
        }
        let seeds: Vec<(VertexId, u64)> =
            best.into_iter().map(|(v, c)| (VertexId(v), c)).collect();

        let mut fused = DijkstraEngine::new(&g);
        fused.run_seeded(&seeds, SearchBounds::radius(radius));

        // Per-source reference: min over single-seed searches.
        let mut want: std::collections::HashMap<u32, u64> = Default::default();
        for &(v, c) in &seeds {
            let mut single = DijkstraEngine::new(&g);
            single.run_seeded(&[(v, c)], SearchBounds::radius(radius));
            for &u in single.settled() {
                let e = want.entry(u.0).or_insert(u64::MAX);
                *e = (*e).min(single.distance(u));
            }
        }

        let mut got: Vec<(u32, u64)> = fused
            .settled()
            .iter()
            .map(|&u| (u.0, fused.distance(u)))
            .collect();
        got.sort_unstable();
        let mut want: Vec<(u32, u64)> = want.into_iter().collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn reference_knn_sorted_and_sized(g in arb_city(), k in 1usize..10, n in 1u64..20) {
        let objects: Vec<(u64, EdgePosition)> = (0..n)
            .map(|i| {
                let e = EdgeId(((i * 37) % g.num_edges() as u64) as u32);
                (i, EdgePosition::at_source(e))
            })
            .collect();
        let q = EdgePosition::at_source(EdgeId(0));
        let knn = roadnet::dijkstra::reference_knn(&g, q, &objects, k);
        prop_assert!(knn.len() <= k);
        for w in knn.windows(2) {
            prop_assert!(w[0].1 <= w[1].1);
        }
    }
}
