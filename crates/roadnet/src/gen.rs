//! Deterministic synthetic road-network generators.
//!
//! The paper evaluates on six DIMACS road networks (Table II). Those files
//! are not available in this offline environment, so this module generates
//! networks with the same *shape*: grid-like planar topology, the low average
//! degree of road graphs (|E|/|V| ≈ 2.4–2.8 directed), strong connectivity,
//! and positive integer weights. Each paper dataset has a preset that scales
//! its vertex/edge counts down by a configurable factor while preserving the
//! |E|/|V| ratio, so the cross-dataset experiments (Figs 5, 6, 10) keep the
//! paper's relative ordering. Feed real `.gr` files through
//! [`crate::dimacs::read_gr`] to reproduce on the original data.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::graph::{Graph, GraphBuilder, VertexId};

/// Parameters for [`grid_city`].
#[derive(Clone, Debug)]
pub struct GridCityParams {
    pub rows: u32,
    pub cols: u32,
    /// Target directed |E| / |V| ratio. Road networks sit around 2.4–2.8.
    /// Minimum achievable is just below 2 (a bidirectional spanning tree).
    pub edge_ratio: f64,
    /// Edge weights are drawn uniformly from this inclusive range.
    pub weight_range: (u32, u32),
    pub seed: u64,
}

impl Default for GridCityParams {
    fn default() -> Self {
        Self {
            rows: 32,
            cols: 32,
            edge_ratio: 2.5,
            weight_range: (100, 2000),
            seed: 42,
        }
    }
}

/// Generate a road-network-shaped graph over a `rows × cols` lattice.
///
/// Construction guarantees strong connectivity: a random spanning tree of the
/// lattice is added bidirectionally, then remaining lattice edges are added
/// (also bidirectionally) in random order until the target edge count is
/// reached. Weights are uniform in `weight_range`. Deterministic in `seed`.
pub fn grid_city(params: &GridCityParams) -> Graph {
    assert!(
        params.rows >= 2 && params.cols >= 2,
        "need at least a 2x2 lattice"
    );
    assert!(
        params.weight_range.0 > 0 && params.weight_range.0 <= params.weight_range.1,
        "invalid weight range"
    );
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let (rows, cols) = (params.rows as usize, params.cols as usize);
    let n = rows * cols;
    let vid = |r: usize, c: usize| VertexId((r * cols + c) as u32);

    let mut b = GraphBuilder::new();
    for r in 0..rows {
        for c in 0..cols {
            // Slight coordinate jitter so the layout is road-like, not exact.
            let jx: f32 = rng.gen_range(-0.3..0.3);
            let jy: f32 = rng.gen_range(-0.3..0.3);
            b.add_vertex_at(c as f32 + jx, r as f32 + jy);
        }
    }

    // All lattice (4-neighbour) edges, shuffled.
    let mut lattice: Vec<(VertexId, VertexId)> = Vec::with_capacity(2 * n);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                lattice.push((vid(r, c), vid(r, c + 1)));
            }
            if r + 1 < rows {
                lattice.push((vid(r, c), vid(r + 1, c)));
            }
        }
    }
    lattice.shuffle(&mut rng);

    // Kruskal-style spanning tree first (guarantees connectivity), leftovers
    // form the pool of optional extras.
    let mut dsu = DisjointSets::new(n);
    let mut extras = Vec::new();
    let w = |rng: &mut SmallRng| rng.gen_range(params.weight_range.0..=params.weight_range.1);
    let mut edges_added = 0usize;
    for (u, v) in lattice {
        if dsu.union(u.index(), v.index()) {
            b.add_bidirectional(u, v, w(&mut rng));
            edges_added += 2;
        } else {
            extras.push((u, v));
        }
    }

    let target_edges = ((n as f64) * params.edge_ratio).round() as usize;
    for (u, v) in extras {
        if edges_added + 2 > target_edges {
            break;
        }
        b.add_bidirectional(u, v, w(&mut rng));
        edges_added += 2;
    }

    b.build()
}

/// The six road networks of the paper's Table II.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dataset {
    /// New York City: 264,346 vertices, 733,846 edges.
    NY,
    /// Colorado: 435,666 vertices, 1,057,066 edges.
    COL,
    /// Florida: 1,070,376 vertices, 2,712,798 edges.
    FLA,
    /// California and Nevada: 1,890,815 vertices, 4,657,742 edges.
    CAL,
    /// Great Lakes: 2,758,119 vertices, 6,885,658 edges.
    LKS,
    /// Full USA: 23,974,347 vertices, 58,333,344 edges.
    USA,
}

impl Dataset {
    /// All datasets, smallest to largest (the order Figs 5/6/10 sweep).
    pub const ALL: [Dataset; 6] = [
        Dataset::NY,
        Dataset::COL,
        Dataset::FLA,
        Dataset::CAL,
        Dataset::LKS,
        Dataset::USA,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Dataset::NY => "NY",
            Dataset::COL => "COL",
            Dataset::FLA => "FLA",
            Dataset::CAL => "CAL",
            Dataset::LKS => "LKS",
            Dataset::USA => "USA",
        }
    }

    /// `(|V|, |E|)` of the real dataset (paper Table II).
    pub fn full_stats(self) -> (u64, u64) {
        match self {
            Dataset::NY => (264_346, 733_846),
            Dataset::COL => (435_666, 1_057_066),
            Dataset::FLA => (1_070_376, 2_712_798),
            Dataset::CAL => (1_890_815, 4_657_742),
            Dataset::LKS => (2_758_119, 6_885_658),
            Dataset::USA => (23_974_347, 58_333_344),
        }
    }

    /// Directed |E|/|V| ratio of the real dataset.
    pub fn edge_ratio(self) -> f64 {
        let (v, e) = self.full_stats();
        e as f64 / v as f64
    }
}

/// Build a scaled-down, shape-preserving instance of `ds`.
///
/// `scale` divides the real vertex count (e.g. `scale = 100` turns NY's 264k
/// vertices into ~2.6k). The |E|/|V| ratio matches the real dataset, and the
/// lattice aspect ratio is kept near-square. Deterministic in `seed`.
pub fn dataset(ds: Dataset, scale: u32, seed: u64) -> Graph {
    let (v_full, _) = ds.full_stats();
    let target_v = ((v_full / scale.max(1) as u64).max(64)) as usize;
    let side = (target_v as f64).sqrt().round().max(2.0) as u32;
    grid_city(&GridCityParams {
        rows: side,
        cols: side,
        edge_ratio: ds.edge_ratio(),
        weight_range: (100, 2000),
        seed: seed ^ (ds as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
    })
}

/// Build a road-shaped network of approximately `target_v` vertices (a
/// near-square jittered lattice with the default 2.5 edge ratio) — the
/// generator the capacity sweeps scale |V| with. The actual vertex count is
/// `side²` for `side = ⌈√target_v⌉`, so it is within ~2·√|V| of the target.
/// Deterministic in `seed`; O(|V|) build time, so paper-scale instances
/// (hundreds of thousands of vertices) generate in well under a second.
pub fn synthetic_grid(target_v: usize, seed: u64) -> Graph {
    let side = (target_v.max(4) as f64).sqrt().ceil().max(2.0) as u32;
    grid_city(&GridCityParams {
        rows: side,
        cols: side,
        edge_ratio: 2.5,
        weight_range: (100, 2000),
        seed,
    })
}

/// Small deterministic fixture graph used across the workspace's tests:
/// an 8×8 grid city with ~160 edges.
pub fn toy(seed: u64) -> Graph {
    grid_city(&GridCityParams {
        rows: 8,
        cols: 8,
        edge_ratio: 2.5,
        weight_range: (1, 20),
        seed,
    })
}

struct DisjointSets {
    parent: Vec<u32>,
}

impl DisjointSets {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] as usize != root {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Returns true if the two sets were merged (were previously disjoint).
    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra] = rb as u32;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::DijkstraEngine;
    use crate::graph::INFINITY;

    #[test]
    fn grid_city_is_strongly_connected() {
        let g = toy(7);
        let mut d = DijkstraEngine::new(&g);
        d.run_from_vertex(VertexId(0));
        for v in g.vertices() {
            assert!(d.distance(v) < INFINITY, "{v:?} unreachable");
        }
    }

    #[test]
    fn grid_city_deterministic() {
        let a = toy(123);
        let b = toy(123);
        assert_eq!(a.num_edges(), b.num_edges());
        for e in a.edge_ids() {
            assert_eq!(a.edge(e), b.edge(e));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = toy(1);
        let b = toy(2);
        let same = a
            .edge_ids()
            .take(50)
            .filter(|&e| e.index() < b.num_edges() && a.edge(e) == b.edge(e))
            .count();
        assert!(same < 50, "seeds produced identical graphs");
    }

    #[test]
    fn edge_ratio_respected() {
        let g = grid_city(&GridCityParams {
            rows: 40,
            cols: 40,
            edge_ratio: 2.5,
            ..Default::default()
        });
        let ratio = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!((ratio - 2.5).abs() < 0.1, "ratio was {ratio}");
    }

    #[test]
    fn dataset_presets_scale() {
        let g = dataset(Dataset::NY, 100, 1);
        let v = g.num_vertices() as f64;
        assert!((2000.0..3500.0).contains(&v), "|V| = {v}");
        let ratio = g.num_edges() as f64 / v;
        assert!((ratio - Dataset::NY.edge_ratio()).abs() < 0.2);
    }

    #[test]
    fn dataset_order_preserved_under_scaling() {
        let sizes: Vec<usize> = Dataset::ALL
            .iter()
            .map(|&ds| dataset(ds, 2000, 5).num_vertices())
            .collect();
        for w in sizes.windows(2) {
            assert!(w[0] <= w[1], "dataset sizes out of order: {sizes:?}");
        }
    }

    #[test]
    fn table2_ratios_are_road_like() {
        for ds in Dataset::ALL {
            let r = ds.edge_ratio();
            assert!((2.0..3.0).contains(&r), "{} ratio {r}", ds.name());
        }
    }

    #[test]
    fn synthetic_grid_hits_target_size() {
        for target in [100usize, 3000, 30_000] {
            let g = synthetic_grid(target, 9);
            let v = g.num_vertices() as f64;
            let t = target as f64;
            assert!(
                v >= t && v <= t + 3.0 * t.sqrt() + 4.0,
                "target {target} gave |V| = {v}"
            );
            let ratio = g.num_edges() as f64 / v;
            assert!((ratio - 2.5).abs() < 0.1, "ratio was {ratio}");
        }
    }

    #[test]
    fn weights_in_range() {
        let g = grid_city(&GridCityParams {
            weight_range: (5, 9),
            ..Default::default()
        });
        for e in g.edge_ids() {
            let w = g.edge(e).weight;
            assert!((5..=9).contains(&w));
        }
    }

    #[test]
    fn coordinates_present() {
        let g = toy(3);
        assert!(g.has_coords());
    }

    #[test]
    #[should_panic(expected = "2x2 lattice")]
    fn degenerate_lattice_rejected() {
        grid_city(&GridCityParams {
            rows: 1,
            cols: 5,
            ..Default::default()
        });
    }
}
