//! Shortest-path searches.
//!
//! Three flavours are provided, all built on the same engine with reusable
//! scratch memory (the "workhorse collection" idiom — a search allocates
//! nothing after the first call):
//!
//! * full single-source Dijkstra,
//! * bounded-radius Dijkstra from arbitrary seed costs (used by G-Grid's
//!   unresolved-vertex refinement, Algorithm 6, and by the baselines),
//! * an exact reference kNN over objects located on edges — the ground truth
//!   every index in the workspace is tested against.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::graph::{Distance, Graph, VertexId, INFINITY};
use crate::position::EdgePosition;

/// Limits for a bounded search.
#[derive(Clone, Copy, Debug)]
pub struct SearchBounds {
    /// Stop settling vertices farther than this.
    pub max_dist: Distance,
    /// Stop after settling this many vertices (safety valve).
    pub max_settled: usize,
}

impl SearchBounds {
    pub fn radius(max_dist: Distance) -> Self {
        Self {
            max_dist,
            max_settled: usize::MAX,
        }
    }

    pub const UNBOUNDED: SearchBounds = SearchBounds {
        max_dist: INFINITY,
        max_settled: usize::MAX,
    };
}

/// Reusable Dijkstra engine over one graph.
///
/// Distances from the most recent search remain readable until the next
/// search. Reuse is O(touched) thanks to an epoch-stamped distance array.
pub struct DijkstraEngine<'g> {
    graph: &'g Graph,
    dist: Vec<Distance>,
    stamp: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<Reverse<(Distance, u32)>>,
    settled: Vec<VertexId>,
}

impl<'g> DijkstraEngine<'g> {
    pub fn new(graph: &'g Graph) -> Self {
        let n = graph.num_vertices();
        Self {
            graph,
            dist: vec![INFINITY; n],
            stamp: vec![0; n],
            epoch: 0,
            heap: BinaryHeap::new(),
            settled: Vec::new(),
        }
    }

    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    #[inline]
    fn reset(&mut self) {
        self.epoch += 1;
        self.heap.clear();
        self.settled.clear();
    }

    #[inline]
    fn get(&self, v: VertexId) -> Distance {
        if self.stamp[v.index()] == self.epoch {
            self.dist[v.index()]
        } else {
            INFINITY
        }
    }

    #[inline]
    fn set(&mut self, v: VertexId, d: Distance) {
        self.dist[v.index()] = d;
        self.stamp[v.index()] = self.epoch;
    }

    /// Distance to `v` from the seeds of the most recent search.
    pub fn distance(&self, v: VertexId) -> Distance {
        self.get(v)
    }

    /// Vertices settled by the most recent search, in settling order.
    pub fn settled(&self) -> &[VertexId] {
        &self.settled
    }

    /// Run Dijkstra from arbitrary `(vertex, initial_cost)` seeds under
    /// `bounds`. Returns the number of settled vertices.
    pub fn run_seeded(&mut self, seeds: &[(VertexId, Distance)], bounds: SearchBounds) -> usize {
        self.reset();
        for &(v, d) in seeds {
            if d < self.get(v) {
                self.set(v, d);
                self.heap.push(Reverse((d, v.0)));
            }
        }
        while let Some(Reverse((d, v))) = self.heap.pop() {
            let v = VertexId(v);
            if d > self.get(v) {
                continue; // stale entry
            }
            if d > bounds.max_dist {
                break;
            }
            self.settled.push(v);
            if self.settled.len() >= bounds.max_settled {
                break;
            }
            for e in self.graph.out_edges(v) {
                let edge = self.graph.edge(e);
                let nd = d + edge.weight as Distance;
                if nd < self.get(edge.dest) && nd <= bounds.max_dist {
                    self.set(edge.dest, nd);
                    self.heap.push(Reverse((nd, edge.dest.0)));
                }
            }
        }
        self.settled.len()
    }

    /// Full single-source Dijkstra from a vertex.
    pub fn run_from_vertex(&mut self, src: VertexId) -> usize {
        self.run_seeded(&[(src, 0)], SearchBounds::UNBOUNDED)
    }

    /// Dijkstra from a position on an edge: the only way off the edge is its
    /// destination vertex, seeded with the residual edge cost.
    pub fn run_from_position(&mut self, q: EdgePosition, bounds: SearchBounds) -> usize {
        let dest = self.graph.edge(q.edge).dest;
        let seed = q.to_dest(self.graph);
        self.run_seeded(&[(dest, seed)], bounds)
    }

    /// Network distance from position `q` to position `p` using the most
    /// recent `run_from_position(q, ..)` state.
    ///
    /// `dist(q, p) = dist(q, source(p.edge)) + p.offset`, with the shortcut
    /// for two positions on the same edge where `p` lies ahead of `q`.
    pub fn position_distance(&self, q: EdgePosition, p: EdgePosition) -> Distance {
        let via_source = self
            .get(self.graph.edge(p.edge).source)
            .saturating_add(p.from_source());
        if p.edge == q.edge && p.offset >= q.offset {
            let along = (p.offset - q.offset) as Distance;
            along.min(via_source)
        } else {
            via_source
        }
    }
}

/// Exact network distance between two edge positions (fresh search).
pub fn position_to_position(graph: &Graph, q: EdgePosition, p: EdgePosition) -> Distance {
    let mut engine = DijkstraEngine::new(graph);
    engine.run_from_position(q, SearchBounds::UNBOUNDED);
    engine.position_distance(q, p)
}

/// Reference exact kNN: the `k` objects nearest to `q`, `(object, distance)`
/// sorted by distance then object id. Ground truth for every index.
pub fn reference_knn(
    graph: &Graph,
    q: EdgePosition,
    objects: &[(u64, EdgePosition)],
    k: usize,
) -> Vec<(u64, Distance)> {
    let mut engine = DijkstraEngine::new(graph);
    engine.run_from_position(q, SearchBounds::UNBOUNDED);
    let mut scored: Vec<(u64, Distance)> = objects
        .iter()
        .map(|&(id, p)| (id, engine.position_distance(q, p)))
        .filter(|&(_, d)| d < INFINITY)
        .collect();
    scored.sort_by_key(|&(id, d)| (d, id));
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeId, GraphBuilder};

    /// 4-cycle with a chord: 0→1(1), 1→2(1), 2→3(1), 3→0(1), 0→2(5).
    fn ring() -> Graph {
        let mut b = GraphBuilder::with_vertices(4);
        b.add_edge(VertexId(0), VertexId(1), 1);
        b.add_edge(VertexId(1), VertexId(2), 1);
        b.add_edge(VertexId(2), VertexId(3), 1);
        b.add_edge(VertexId(3), VertexId(0), 1);
        b.add_edge(VertexId(0), VertexId(2), 5);
        b.build()
    }

    #[test]
    fn single_source_distances() {
        let g = ring();
        let mut d = DijkstraEngine::new(&g);
        d.run_from_vertex(VertexId(0));
        assert_eq!(d.distance(VertexId(0)), 0);
        assert_eq!(d.distance(VertexId(1)), 1);
        assert_eq!(d.distance(VertexId(2)), 2); // via 1, not the chord
        assert_eq!(d.distance(VertexId(3)), 3);
    }

    #[test]
    fn engine_reuse_resets_state() {
        let g = ring();
        let mut d = DijkstraEngine::new(&g);
        d.run_from_vertex(VertexId(0));
        d.run_from_vertex(VertexId(2));
        assert_eq!(d.distance(VertexId(2)), 0);
        assert_eq!(d.distance(VertexId(0)), 2);
        assert_eq!(d.distance(VertexId(1)), 3);
    }

    #[test]
    fn bounded_radius_stops() {
        let g = ring();
        let mut d = DijkstraEngine::new(&g);
        let settled = d.run_seeded(&[(VertexId(0), 0)], SearchBounds::radius(1));
        assert_eq!(settled, 2); // vertex 0 and vertex 1
        assert_eq!(d.distance(VertexId(3)), INFINITY);
    }

    #[test]
    fn max_settled_stops() {
        let g = ring();
        let mut d = DijkstraEngine::new(&g);
        let bounds = SearchBounds {
            max_dist: INFINITY,
            max_settled: 1,
        };
        assert_eq!(d.run_seeded(&[(VertexId(0), 0)], bounds), 1);
    }

    #[test]
    fn disconnected_vertex_unreachable() {
        let mut b = GraphBuilder::with_vertices(3);
        b.add_edge(VertexId(0), VertexId(1), 1);
        let g = b.build();
        let mut d = DijkstraEngine::new(&g);
        d.run_from_vertex(VertexId(0));
        assert_eq!(d.distance(VertexId(2)), INFINITY);
    }

    #[test]
    fn position_distance_same_edge_forward() {
        let g = ring();
        // Both on edge 0 (0→1, weight 1): q at offset 0, p at offset 1.
        let q = EdgePosition::new(EdgeId(0), 0);
        let p = EdgePosition::new(EdgeId(0), 1);
        assert_eq!(position_to_position(&g, q, p), 1);
    }

    #[test]
    fn position_distance_same_edge_behind_wraps() {
        let g = ring();
        // p behind q on the same edge: must loop the ring 1→2→3→0 then re-enter.
        let q = EdgePosition::new(EdgeId(0), 1);
        let p = EdgePosition::new(EdgeId(0), 0);
        // q is at vertex 1 effectively; loop to 0 costs 3, re-enter edge 0 offset 0.
        assert_eq!(position_to_position(&g, q, p), 3);
    }

    #[test]
    fn position_distance_cross_edges() {
        let g = ring();
        let q = EdgePosition::new(EdgeId(0), 0); // on 0→1 at source
        let p = EdgePosition::new(EdgeId(2), 1); // on 2→3 at dest side
                                                 // to vertex 1: 1, to vertex 2: 2, plus offset 1 = 3.
        assert_eq!(position_to_position(&g, q, p), 3);
    }

    #[test]
    fn reference_knn_orders_and_truncates() {
        let g = ring();
        let q = EdgePosition::new(EdgeId(0), 0);
        let objects = vec![
            (10, EdgePosition::new(EdgeId(2), 0)), // dist 2
            (11, EdgePosition::new(EdgeId(0), 1)), // dist 1
            (12, EdgePosition::new(EdgeId(3), 1)), // dist 4
        ];
        let knn = reference_knn(&g, q, &objects, 2);
        assert_eq!(knn, vec![(11, 1), (10, 2)]);
    }

    #[test]
    fn reference_knn_ties_break_by_id() {
        let g = ring();
        let q = EdgePosition::new(EdgeId(0), 0);
        let objects = vec![
            (7, EdgePosition::new(EdgeId(1), 0)),
            (3, EdgePosition::new(EdgeId(1), 0)),
        ];
        let knn = reference_knn(&g, q, &objects, 2);
        assert_eq!(knn[0].0, 3);
        assert_eq!(knn[1].0, 7);
    }

    #[test]
    fn reference_knn_skips_unreachable() {
        let mut b = GraphBuilder::with_vertices(4);
        b.add_edge(VertexId(0), VertexId(1), 1);
        b.add_edge(VertexId(2), VertexId(3), 1); // island
        let g = b.build();
        let q = EdgePosition::new(EdgeId(0), 0);
        let objects = vec![(1, EdgePosition::new(EdgeId(1), 0))];
        assert!(reference_knn(&g, q, &objects, 1).is_empty());
    }
}
