//! Shortest-path searches.
//!
//! Three flavours are provided, all built on the same engine with reusable
//! scratch memory (the "workhorse collection" idiom — a search allocates
//! nothing after the first call):
//!
//! * full single-source Dijkstra,
//! * bounded-radius Dijkstra from arbitrary seed costs (used by G-Grid's
//!   unresolved-vertex refinement, Algorithm 6, and by the baselines),
//! * an exact reference kNN over objects located on edges — the ground truth
//!   every index in the workspace is tested against.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::graph::{Distance, Graph, VertexId, INFINITY};
use crate::position::EdgePosition;

/// Limits for a bounded search.
#[derive(Clone, Copy, Debug)]
pub struct SearchBounds {
    /// Stop settling vertices farther than this.
    pub max_dist: Distance,
    /// Stop after settling this many vertices (safety valve).
    pub max_settled: usize,
}

impl SearchBounds {
    pub fn radius(max_dist: Distance) -> Self {
        Self {
            max_dist,
            max_settled: usize::MAX,
        }
    }

    pub const UNBOUNDED: SearchBounds = SearchBounds {
        max_dist: INFINITY,
        max_settled: usize::MAX,
    };
}

/// Detachable working memory of a [`DijkstraEngine`]: the epoch-stamped
/// distance array, heap, and settled list. Construction is O(|V|); a
/// scratch detached with [`DijkstraEngine::into_scratch`] can be re-attached
/// to another engine over the same graph with
/// [`DijkstraEngine::with_scratch`] in O(1), so callers that run many short
/// searches (G-Grid's refinement phase) pay the allocation once per pool
/// slot instead of once per query.
#[derive(Debug)]
pub struct DijkstraScratch {
    dist: Vec<Distance>,
    stamp: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<Reverse<(Distance, u32)>>,
    settled: Vec<VertexId>,
}

impl DijkstraScratch {
    pub fn with_capacity(n: usize) -> Self {
        Self {
            dist: vec![INFINITY; n],
            stamp: vec![0; n],
            epoch: 0,
            heap: BinaryHeap::new(),
            settled: Vec::new(),
        }
    }

    /// Number of vertices this scratch is sized for.
    pub fn capacity(&self) -> usize {
        self.dist.len()
    }

    /// Resident bytes of the working memory (distance + stamp arrays
    /// dominate; heap and settled list are counted at capacity).
    pub fn size_bytes(&self) -> u64 {
        (self.dist.capacity() * std::mem::size_of::<Distance>()
            + self.stamp.capacity() * std::mem::size_of::<u32>()
            + self.heap.capacity() * std::mem::size_of::<Reverse<(Distance, u32)>>()
            + self.settled.capacity() * std::mem::size_of::<VertexId>()) as u64
    }
}

/// Reusable Dijkstra engine over one graph.
///
/// Distances from the most recent search remain readable until the next
/// search. Reuse is O(touched) thanks to an epoch-stamped distance array.
pub struct DijkstraEngine<'g> {
    graph: &'g Graph,
    scratch: DijkstraScratch,
    relaxed: u64,
}

impl<'g> DijkstraEngine<'g> {
    pub fn new(graph: &'g Graph) -> Self {
        Self::with_scratch(graph, DijkstraScratch::with_capacity(graph.num_vertices()))
    }

    /// Build an engine around pooled working memory. A scratch sized for a
    /// smaller graph is grown (the new slots read as unvisited); a larger
    /// one is kept as-is.
    pub fn with_scratch(graph: &'g Graph, mut scratch: DijkstraScratch) -> Self {
        let n = graph.num_vertices();
        if scratch.dist.len() < n {
            scratch.dist.resize(n, INFINITY);
            scratch.stamp.resize(n, 0);
        }
        Self {
            graph,
            scratch,
            relaxed: 0,
        }
    }

    /// Detach the working memory for pooling (see [`DijkstraScratch`]).
    pub fn into_scratch(self) -> DijkstraScratch {
        self.scratch
    }

    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    #[inline]
    fn reset(&mut self) {
        if self.scratch.epoch == u32::MAX {
            // Epoch wrap: clear the stamps so no stale entry can alias the
            // restarted counter.
            self.scratch.stamp.fill(0);
            self.scratch.epoch = 0;
        }
        self.scratch.epoch += 1;
        self.scratch.heap.clear();
        self.scratch.settled.clear();
        self.relaxed = 0;
    }

    #[inline]
    fn get(&self, v: VertexId) -> Distance {
        if self.scratch.stamp[v.index()] == self.scratch.epoch {
            self.scratch.dist[v.index()]
        } else {
            INFINITY
        }
    }

    #[inline]
    fn set(&mut self, v: VertexId, d: Distance) {
        self.scratch.dist[v.index()] = d;
        self.scratch.stamp[v.index()] = self.scratch.epoch;
    }

    /// Distance to `v` from the seeds of the most recent search.
    pub fn distance(&self, v: VertexId) -> Distance {
        self.get(v)
    }

    /// Vertices settled by the most recent search, in settling order.
    pub fn settled(&self) -> &[VertexId] {
        &self.scratch.settled
    }

    /// Edges examined (relaxation attempts) by the most recent search.
    pub fn relaxed(&self) -> u64 {
        self.relaxed
    }

    /// Run Dijkstra from arbitrary `(vertex, initial_cost)` seeds under
    /// `bounds`. Returns the number of settled vertices.
    ///
    /// This is a true *multi-source* search: with seeds `(vᵢ, cᵢ)` it settles
    /// each vertex `u` at `min_i(cᵢ + dist(vᵢ, u))`, i.e. exactly the
    /// pointwise minimum over the per-seed single-source searches, in a
    /// single pass. Shared shortest-path subtrees are settled once instead of
    /// once per seed, which is where G-Grid's fused refinement (Algorithm 6)
    /// gets its CPU win.
    pub fn run_seeded(&mut self, seeds: &[(VertexId, Distance)], bounds: SearchBounds) -> usize {
        self.reset();
        for &(v, d) in seeds {
            if d < self.get(v) {
                self.set(v, d);
                self.scratch.heap.push(Reverse((d, v.0)));
            }
        }
        while let Some(Reverse((d, v))) = self.scratch.heap.pop() {
            let v = VertexId(v);
            if d > self.get(v) {
                continue; // stale entry
            }
            if d > bounds.max_dist {
                break;
            }
            self.scratch.settled.push(v);
            if self.scratch.settled.len() >= bounds.max_settled {
                break;
            }
            for e in self.graph.out_edges(v) {
                let edge = self.graph.edge(e);
                self.relaxed += 1;
                let nd = d + edge.weight as Distance;
                if nd < self.get(edge.dest) && nd <= bounds.max_dist {
                    self.set(edge.dest, nd);
                    self.scratch.heap.push(Reverse((nd, edge.dest.0)));
                }
            }
        }
        self.scratch.settled.len()
    }

    /// Full single-source Dijkstra from a vertex.
    pub fn run_from_vertex(&mut self, src: VertexId) -> usize {
        self.run_seeded(&[(src, 0)], SearchBounds::UNBOUNDED)
    }

    /// Dijkstra from a position on an edge: the only way off the edge is its
    /// destination vertex, seeded with the residual edge cost.
    pub fn run_from_position(&mut self, q: EdgePosition, bounds: SearchBounds) -> usize {
        let dest = self.graph.edge(q.edge).dest;
        let seed = q.to_dest(self.graph);
        self.run_seeded(&[(dest, seed)], bounds)
    }

    /// Network distance from position `q` to position `p` using the most
    /// recent `run_from_position(q, ..)` state.
    ///
    /// `dist(q, p) = dist(q, source(p.edge)) + p.offset`, with the shortcut
    /// for two positions on the same edge where `p` lies ahead of `q`.
    pub fn position_distance(&self, q: EdgePosition, p: EdgePosition) -> Distance {
        let via_source = self
            .get(self.graph.edge(p.edge).source)
            .saturating_add(p.from_source());
        if p.edge == q.edge && p.offset >= q.offset {
            let along = (p.offset - q.offset) as Distance;
            along.min(via_source)
        } else {
            via_source
        }
    }
}

/// Exact network distance between two edge positions (fresh search).
pub fn position_to_position(graph: &Graph, q: EdgePosition, p: EdgePosition) -> Distance {
    let mut engine = DijkstraEngine::new(graph);
    engine.run_from_position(q, SearchBounds::UNBOUNDED);
    engine.position_distance(q, p)
}

/// Reference exact kNN: the `k` objects nearest to `q`, `(object, distance)`
/// sorted by distance then object id. Ground truth for every index.
pub fn reference_knn(
    graph: &Graph,
    q: EdgePosition,
    objects: &[(u64, EdgePosition)],
    k: usize,
) -> Vec<(u64, Distance)> {
    let mut engine = DijkstraEngine::new(graph);
    engine.run_from_position(q, SearchBounds::UNBOUNDED);
    let mut scored: Vec<(u64, Distance)> = objects
        .iter()
        .map(|&(id, p)| (id, engine.position_distance(q, p)))
        .filter(|&(_, d)| d < INFINITY)
        .collect();
    scored.sort_by_key(|&(id, d)| (d, id));
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeId, GraphBuilder};

    /// 4-cycle with a chord: 0→1(1), 1→2(1), 2→3(1), 3→0(1), 0→2(5).
    fn ring() -> Graph {
        let mut b = GraphBuilder::with_vertices(4);
        b.add_edge(VertexId(0), VertexId(1), 1);
        b.add_edge(VertexId(1), VertexId(2), 1);
        b.add_edge(VertexId(2), VertexId(3), 1);
        b.add_edge(VertexId(3), VertexId(0), 1);
        b.add_edge(VertexId(0), VertexId(2), 5);
        b.build()
    }

    #[test]
    fn single_source_distances() {
        let g = ring();
        let mut d = DijkstraEngine::new(&g);
        d.run_from_vertex(VertexId(0));
        assert_eq!(d.distance(VertexId(0)), 0);
        assert_eq!(d.distance(VertexId(1)), 1);
        assert_eq!(d.distance(VertexId(2)), 2); // via 1, not the chord
        assert_eq!(d.distance(VertexId(3)), 3);
    }

    #[test]
    fn engine_reuse_resets_state() {
        let g = ring();
        let mut d = DijkstraEngine::new(&g);
        d.run_from_vertex(VertexId(0));
        d.run_from_vertex(VertexId(2));
        assert_eq!(d.distance(VertexId(2)), 0);
        assert_eq!(d.distance(VertexId(0)), 2);
        assert_eq!(d.distance(VertexId(1)), 3);
    }

    #[test]
    fn bounded_radius_stops() {
        let g = ring();
        let mut d = DijkstraEngine::new(&g);
        let settled = d.run_seeded(&[(VertexId(0), 0)], SearchBounds::radius(1));
        assert_eq!(settled, 2); // vertex 0 and vertex 1
        assert_eq!(d.distance(VertexId(3)), INFINITY);
    }

    #[test]
    fn max_settled_stops() {
        let g = ring();
        let mut d = DijkstraEngine::new(&g);
        let bounds = SearchBounds {
            max_dist: INFINITY,
            max_settled: 1,
        };
        assert_eq!(d.run_seeded(&[(VertexId(0), 0)], bounds), 1);
    }

    #[test]
    fn multi_source_is_pointwise_min_of_single_sources() {
        let g = ring();
        let seeds = [(VertexId(0), 2), (VertexId(2), 0)];
        let mut multi = DijkstraEngine::new(&g);
        multi.run_seeded(&seeds, SearchBounds::UNBOUNDED);
        let mut single = DijkstraEngine::new(&g);
        for v in 0..4 {
            let v = VertexId(v);
            let mut best = INFINITY;
            for &(s, c) in &seeds {
                single.run_seeded(&[(s, c)], SearchBounds::UNBOUNDED);
                best = best.min(single.distance(v));
            }
            assert_eq!(multi.distance(v), best, "vertex {v:?}");
        }
    }

    #[test]
    fn multi_source_shares_subtrees() {
        // Two seeds whose searches overlap: the fused search must examine
        // fewer edges than the sum of the per-seed searches.
        let g = ring();
        let seeds = [(VertexId(0), 0), (VertexId(1), 0)];
        let mut engine = DijkstraEngine::new(&g);
        engine.run_seeded(&seeds, SearchBounds::UNBOUNDED);
        let fused = engine.relaxed();
        let mut split = 0;
        for &(s, c) in &seeds {
            engine.run_seeded(&[(s, c)], SearchBounds::UNBOUNDED);
            split += engine.relaxed();
        }
        assert!(fused < split, "fused {fused} vs split {split}");
    }

    #[test]
    fn relaxed_counter_resets_per_search() {
        let g = ring();
        let mut d = DijkstraEngine::new(&g);
        d.run_from_vertex(VertexId(0));
        let first = d.relaxed();
        assert!(first > 0);
        d.run_seeded(&[(VertexId(3), 0)], SearchBounds::radius(0));
        assert!(d.relaxed() < first);
    }

    #[test]
    fn disconnected_vertex_unreachable() {
        let mut b = GraphBuilder::with_vertices(3);
        b.add_edge(VertexId(0), VertexId(1), 1);
        let g = b.build();
        let mut d = DijkstraEngine::new(&g);
        d.run_from_vertex(VertexId(0));
        assert_eq!(d.distance(VertexId(2)), INFINITY);
    }

    #[test]
    fn position_distance_same_edge_forward() {
        let g = ring();
        // Both on edge 0 (0→1, weight 1): q at offset 0, p at offset 1.
        let q = EdgePosition::new(EdgeId(0), 0);
        let p = EdgePosition::new(EdgeId(0), 1);
        assert_eq!(position_to_position(&g, q, p), 1);
    }

    #[test]
    fn position_distance_same_edge_behind_wraps() {
        let g = ring();
        // p behind q on the same edge: must loop the ring 1→2→3→0 then re-enter.
        let q = EdgePosition::new(EdgeId(0), 1);
        let p = EdgePosition::new(EdgeId(0), 0);
        // q is at vertex 1 effectively; loop to 0 costs 3, re-enter edge 0 offset 0.
        assert_eq!(position_to_position(&g, q, p), 3);
    }

    #[test]
    fn position_distance_cross_edges() {
        let g = ring();
        let q = EdgePosition::new(EdgeId(0), 0); // on 0→1 at source
        let p = EdgePosition::new(EdgeId(2), 1); // on 2→3 at dest side
                                                 // to vertex 1: 1, to vertex 2: 2, plus offset 1 = 3.
        assert_eq!(position_to_position(&g, q, p), 3);
    }

    #[test]
    fn reference_knn_orders_and_truncates() {
        let g = ring();
        let q = EdgePosition::new(EdgeId(0), 0);
        let objects = vec![
            (10, EdgePosition::new(EdgeId(2), 0)), // dist 2
            (11, EdgePosition::new(EdgeId(0), 1)), // dist 1
            (12, EdgePosition::new(EdgeId(3), 1)), // dist 4
        ];
        let knn = reference_knn(&g, q, &objects, 2);
        assert_eq!(knn, vec![(11, 1), (10, 2)]);
    }

    #[test]
    fn reference_knn_ties_break_by_id() {
        let g = ring();
        let q = EdgePosition::new(EdgeId(0), 0);
        let objects = vec![
            (7, EdgePosition::new(EdgeId(1), 0)),
            (3, EdgePosition::new(EdgeId(1), 0)),
        ];
        let knn = reference_knn(&g, q, &objects, 2);
        assert_eq!(knn[0].0, 3);
        assert_eq!(knn[1].0, 7);
    }

    #[test]
    fn scratch_round_trips_between_engines() {
        let g = ring();
        let mut e1 = DijkstraEngine::new(&g);
        e1.run_from_vertex(VertexId(0));
        let want: Vec<Distance> = g.vertices().map(|v| e1.distance(v)).collect();
        let scratch = e1.into_scratch();
        // Re-attached scratch carries stale stamps from the first search;
        // the next run must not read them as live distances.
        let mut e2 = DijkstraEngine::with_scratch(&g, scratch);
        e2.run_from_vertex(VertexId(0));
        let got: Vec<Distance> = g.vertices().map(|v| e2.distance(v)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn undersized_scratch_grows_to_fit() {
        let g = ring();
        let mut e = DijkstraEngine::with_scratch(&g, DijkstraScratch::with_capacity(1));
        e.run_from_vertex(VertexId(0));
        assert_eq!(e.settled().len(), g.num_vertices());
    }

    #[test]
    fn epoch_wrap_clears_stale_stamps() {
        let g = ring();
        let mut scratch = DijkstraScratch::with_capacity(g.num_vertices());
        scratch.epoch = u32::MAX; // force the wrap on the next reset
        scratch.stamp.fill(u32::MAX); // stale stamps that would alias epoch 0
        scratch.dist.fill(0);
        let mut e = DijkstraEngine::with_scratch(&g, scratch);
        e.run_seeded(&[(VertexId(0), 0)], SearchBounds::radius(0));
        // Only the seed is settled; the poisoned zero distances must not
        // leak through as already-settled vertices.
        assert_eq!(e.settled(), &[VertexId(0)]);
        assert_eq!(e.distance(VertexId(2)), INFINITY);
    }

    #[test]
    fn reference_knn_skips_unreachable() {
        let mut b = GraphBuilder::with_vertices(4);
        b.add_edge(VertexId(0), VertexId(1), 1);
        b.add_edge(VertexId(2), VertexId(3), 1); // island
        let g = b.build();
        let q = EdgePosition::new(EdgeId(0), 0);
        let objects = vec![(1, EdgePosition::new(EdgeId(1), 0))];
        assert!(reference_knn(&g, q, &objects, 1).is_empty());
    }
}
