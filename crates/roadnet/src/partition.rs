//! Multilevel graph partitioning (Karypis–Kumar style).
//!
//! The paper partitions the road network with the multilevel scheme of
//! Karypis and Kumar \[5\]: recursively bisect the vertex set into equal-sized
//! halves while minimising the edge cut; sibling halves become neighbouring
//! cells (§III-A). This module implements that scheme:
//!
//! * **coarsening** via heavy-edge matching,
//! * **initial bisection** via weighted BFS region growing,
//! * **refinement** via a boundary Kernighan–Lin pass at every level,
//! * **recursion** producing a bit-string part id per vertex, where bit `i`
//!   records the side taken at bisection level `i` — exactly the shape the
//!   G-Grid needs to lay parts onto a `2^ψ × 2^ψ` cell lattice, and the shape
//!   V-Tree needs for its partition hierarchy.

use crate::graph::{Graph, VertexId};

/// Result of partitioning: `assignment[v]` is the part id of vertex `v`.
#[derive(Clone, Debug)]
pub struct Partition {
    pub assignment: Vec<u32>,
    pub num_parts: u32,
}

impl Partition {
    /// Number of directed edges crossing parts.
    pub fn cut_edges(&self, graph: &Graph) -> usize {
        graph
            .edge_ids()
            .filter(|&e| {
                let edge = graph.edge(e);
                self.assignment[edge.source.index()] != self.assignment[edge.dest.index()]
            })
            .count()
    }

    /// Sizes of each part.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_parts as usize];
        for &p in &self.assignment {
            sizes[p as usize] += 1;
        }
        sizes
    }
}

/// Undirected weighted working graph used during multilevel bisection.
/// Vertices carry weights (number of original vertices they contain).
/// Adjacency is a flat CSR (`off[v]..off[v+1]` slices `edges`) — the
/// builders below construct it with three allocations total instead of one
/// `Vec` per vertex per coarsening level, which dominated large builds.
struct WorkGraph {
    vwt: Vec<u64>,
    off: Vec<u32>,
    edges: Vec<(u32, u64)>,
}

/// Epoch-stamped global→local vertex renaming, shared across every node of
/// the bisection recursion. `from_subset` used to allocate and clear a
/// fresh O(|V|) map at *every* recursion node — ~2·2^depth allocations of
/// |V| words, which is what made grid builds infeasible past ~10⁵ vertices.
/// With the stamp, clearing is an epoch bump and the O(|V|) arrays are
/// allocated exactly once per partitioning run.
struct SubsetScratch {
    local: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
}

impl SubsetScratch {
    fn new(num_vertices: usize) -> Self {
        Self {
            local: vec![0; num_vertices],
            stamp: vec![0; num_vertices],
            epoch: 0,
        }
    }

    /// Invalidate every mapping (O(1) amortised; stamps rewritten once per
    /// u32 wrap).
    fn begin(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    #[inline]
    fn set(&mut self, global: usize, local: u32) {
        self.local[global] = local;
        self.stamp[global] = self.epoch;
    }

    /// Local index of `global` this epoch, or `u32::MAX` when it is not in
    /// the current subset (the sentinel the build loop branches on).
    #[inline]
    fn get(&self, global: usize) -> u32 {
        if self.stamp[global] == self.epoch {
            self.local[global]
        } else {
            u32::MAX
        }
    }
}

impl WorkGraph {
    fn len(&self) -> usize {
        self.vwt.len()
    }

    fn total_weight(&self) -> u64 {
        self.vwt.iter().sum()
    }

    #[inline]
    fn neighbors(&self, v: usize) -> &[(u32, u64)] {
        &self.edges[self.off[v] as usize..self.off[v + 1] as usize]
    }

    /// Build the level-0 working graph for a subset of `graph`'s vertices.
    /// Edge directions are ignored and parallel edges merged.
    fn from_subset(graph: &Graph, subset: &[VertexId], scratch: &mut SubsetScratch) -> Self {
        scratch.begin();
        for (i, &v) in subset.iter().enumerate() {
            scratch.set(v.index(), i as u32);
        }
        let n = subset.len();
        let mut off = vec![0u32; n + 1];
        for (i, &v) in subset.iter().enumerate() {
            let mut d = 0u32;
            for e in graph.out_edges(v) {
                let j = scratch.get(graph.edge(e).dest.index());
                if j != u32::MAX && j != i as u32 {
                    d += 1;
                }
            }
            // In-edges too: the working graph is undirected.
            for e in graph.in_edges(v) {
                let j = scratch.get(graph.edge(e).source.index());
                if j != u32::MAX && j != i as u32 {
                    d += 1;
                }
            }
            off[i + 1] = d;
        }
        for i in 0..n {
            off[i + 1] += off[i];
        }
        let mut edges = vec![(0u32, 0u64); off[n] as usize];
        let mut cursor: Vec<u32> = off[..n].to_vec();
        for (i, &v) in subset.iter().enumerate() {
            for e in graph.out_edges(v) {
                let j = scratch.get(graph.edge(e).dest.index());
                if j != u32::MAX && j != i as u32 {
                    edges[cursor[i] as usize] = (j, 1);
                    cursor[i] += 1;
                }
            }
            for e in graph.in_edges(v) {
                let j = scratch.get(graph.edge(e).source.index());
                if j != u32::MAX && j != i as u32 {
                    edges[cursor[i] as usize] = (j, 1);
                    cursor[i] += 1;
                }
            }
        }
        merge_parallel(&mut off, &mut edges);
        Self {
            vwt: vec![1; n],
            off,
            edges,
        }
    }
}

/// Sort each CSR segment by neighbour id and merge parallel edges in
/// place, rewriting `off` to the compacted offsets.
fn merge_parallel(off: &mut [u32], edges: &mut Vec<(u32, u64)>) {
    let n = off.len() - 1;
    let mut w = 0usize;
    let mut start = 0usize;
    for v in 0..n {
        let end = off[v + 1] as usize;
        edges[start..end].sort_unstable_by_key(|&(j, _)| j);
        let mut i = start;
        while i < end {
            let (j, mut wt) = edges[i];
            i += 1;
            while i < end && edges[i].0 == j {
                wt += edges[i].1;
                i += 1;
            }
            edges[w] = (j, wt);
            w += 1;
        }
        start = end;
        off[v + 1] = w as u32;
    }
    edges.truncate(w);
}

/// Heavy-edge matching coarsening: returns (coarse graph, map fine→coarse).
fn coarsen(g: &WorkGraph) -> (WorkGraph, Vec<u32>) {
    let n = g.len();
    let mut matched = vec![u32::MAX; n];
    let mut next = 0u32;
    // Visit in index order; deterministic. Match each unmatched vertex with
    // its heaviest unmatched neighbour.
    for v in 0..n {
        if matched[v] != u32::MAX {
            continue;
        }
        let mut best: Option<(u32, u64)> = None;
        for &(u, w) in g.neighbors(v) {
            if matched[u as usize] == u32::MAX && best.is_none_or(|(_, bw)| w > bw) {
                best = Some((u, w));
            }
        }
        let id = next;
        next += 1;
        matched[v] = id;
        if let Some((u, _)) = best {
            matched[u as usize] = id;
        }
    }
    let cn = next as usize;
    let mut vwt = vec![0u64; cn];
    let mut off = vec![0u32; cn + 1];
    for v in 0..n {
        let cv = matched[v] as usize;
        vwt[cv] += g.vwt[v];
        for &(u, _) in g.neighbors(v) {
            if matched[u as usize] as usize != cv {
                off[cv + 1] += 1;
            }
        }
    }
    for c in 0..cn {
        off[c + 1] += off[c];
    }
    let mut edges = vec![(0u32, 0u64); off[cn] as usize];
    let mut cursor: Vec<u32> = off[..cn].to_vec();
    for v in 0..n {
        let cv = matched[v] as usize;
        for &(u, w) in g.neighbors(v) {
            let cu = matched[u as usize];
            if cu as usize != cv {
                edges[cursor[cv] as usize] = (cu, w);
                cursor[cv] += 1;
            }
        }
    }
    merge_parallel(&mut off, &mut edges);
    (WorkGraph { vwt, off, edges }, matched)
}

/// Initial bisection by BFS region growing from vertex 0 until half of the
/// total weight is collected. `side[v] = true` marks the grown region.
fn initial_bisection(g: &WorkGraph) -> Vec<bool> {
    let n = g.len();
    let half = g.total_weight() / 2;
    let mut side = vec![false; n];
    let mut grown = 0u64;
    let mut queue = std::collections::VecDeque::new();
    let mut seen = vec![false; n];
    let mut start = 0usize;
    while grown < half {
        // Handle disconnected working graphs by restarting BFS.
        while start < n && seen[start] {
            start += 1;
        }
        if start >= n {
            break;
        }
        queue.push_back(start as u32);
        seen[start] = true;
        while let Some(v) = queue.pop_front() {
            if grown >= half {
                break;
            }
            side[v as usize] = true;
            grown += g.vwt[v as usize];
            for &(u, _) in g.neighbors(v as usize) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    side
}

/// One boundary Kernighan–Lin refinement pass: greedily move boundary
/// vertices with positive cut gain while keeping both sides ≥ `min_frac`
/// of the total weight. Runs a bounded number of sweeps.
fn refine(g: &WorkGraph, side: &mut [bool]) {
    let total = g.total_weight();
    let min_side = total / 5; // keep sides within 20–80%; callers rebalance
    let mut wa: u64 = (0..g.len()).filter(|&v| side[v]).map(|v| g.vwt[v]).sum();
    for _sweep in 0..4 {
        let mut moved_any = false;
        for v in 0..g.len() {
            let (mut internal, mut external) = (0u64, 0u64);
            for &(u, w) in g.neighbors(v) {
                if side[u as usize] == side[v] {
                    internal += w;
                } else {
                    external += w;
                }
            }
            if external > internal {
                // Check balance before moving v to the other side.
                let wb = total - wa;
                let (from, _to) = if side[v] { (wa, wb) } else { (wb, wa) };
                if from - g.vwt[v].min(from) < min_side {
                    continue;
                }
                if side[v] {
                    wa -= g.vwt[v];
                } else {
                    wa += g.vwt[v];
                }
                side[v] = !side[v];
                moved_any = true;
            }
        }
        if !moved_any {
            break;
        }
    }
}

/// Multilevel bisection of a working graph into two sides.
fn bisect(g: &WorkGraph) -> Vec<bool> {
    if g.len() <= 16 {
        let mut side = initial_bisection(g);
        refine(g, &mut side);
        rebalance(g, &mut side);
        return side;
    }
    let (coarse, map) = coarsen(g);
    // Recurse only while matching shrinks the graph meaningfully. A strict
    // `<` test lets a stalling match (e.g. a hub vertex whose leaves all
    // become singletons) shed a handful of vertices per level, turning the
    // recursion O(|V|) deep — quadratic work and a blown stack on
    // 10⁵-vertex subsets.
    let mut side = if coarse.len() < g.len() - g.len() / 16 {
        let cside = bisect(&coarse);
        map.iter().map(|&c| cside[c as usize]).collect()
    } else {
        initial_bisection(g) // coarsening stalled
    };
    refine(g, &mut side);
    rebalance(g, &mut side);
    side
}

/// Force the two sides within one (weighted) vertex of perfect balance by
/// moving cheapest-to-move vertices. The paper's cells have a hard capacity
/// δᶜ, so balance is a correctness requirement, not just a quality goal.
fn rebalance(g: &WorkGraph, side: &mut [bool]) {
    let total = g.total_weight() as i64;
    let mut wa: i64 = (0..g.len())
        .filter(|&v| side[v])
        .map(|v| g.vwt[v] as i64)
        .sum();
    // One O(n) scan per *round*, not per move: collect every heavy-side
    // vertex with its cut gain, then drain the imbalance through them in
    // descending-gain order. The old one-scan-per-move loop was quadratic
    // on large subsets (refinement can leave the sides tens of thousands
    // of moves apart), which dominated 300k-vertex grid builds.
    loop {
        let heavy_is_a = wa >= total - wa;
        let signed_diff = |wa: i64| {
            if heavy_is_a {
                2 * wa - total
            } else {
                total - 2 * wa
            }
        };
        if signed_diff(wa) <= 1 {
            break;
        }
        let mut candidates: Vec<(i64, u64, u32)> = (0..g.len())
            .filter(|&v| side[v] == heavy_is_a)
            .map(|v| {
                let mut gain = 0i64;
                for &(u, w) in g.neighbors(v) {
                    gain += if side[u as usize] == side[v] {
                        -(w as i64)
                    } else {
                        w as i64
                    };
                }
                (gain, g.vwt[v], v as u32)
            })
            .collect();
        // Best cut gain first; vertex id breaks ties deterministically.
        candidates.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.2.cmp(&b.2)));
        let mut moved_any = false;
        for &(_, wt, v) in &candidates {
            let diff = signed_diff(wa);
            if diff <= 1 {
                break;
            }
            // A move shifts the difference by 2·wt; skip vertices that
            // would overshoot past ±1.
            if 2 * wt as i64 > diff + 1 {
                continue;
            }
            let v = v as usize;
            if side[v] {
                wa -= wt as i64;
            } else {
                wa += wt as i64;
            }
            side[v] = !side[v];
            moved_any = true;
        }
        if !moved_any {
            break; // nothing movable without overshooting
        }
    }
}

/// Recursively bisect `graph` to `depth` levels.
///
/// Returns a part id per vertex in `0..2^depth`; bit `depth-1-i` of the id is
/// the side chosen at recursion level `i` (most significant bit = first
/// split), so sibling parts differ in their lowest bits — interleaving the
/// bits of the id yields the neighbouring-cell layout of the paper.
pub fn hierarchical_bisection(graph: &Graph, depth: u32) -> Partition {
    let all: Vec<VertexId> = graph.vertices().collect();
    let mut assignment = vec![0u32; graph.num_vertices()];
    let mut scratch = SubsetScratch::new(graph.num_vertices());
    split_recursive(graph, &all, depth, 0, &mut assignment, &mut scratch);
    Partition {
        assignment,
        num_parts: 1 << depth,
    }
}

fn split_recursive(
    graph: &Graph,
    subset: &[VertexId],
    levels_left: u32,
    prefix: u32,
    assignment: &mut [u32],
    scratch: &mut SubsetScratch,
) {
    if levels_left == 0 || subset.is_empty() {
        for &v in subset {
            assignment[v.index()] = prefix;
        }
        return;
    }
    let wg = WorkGraph::from_subset(graph, subset, scratch);
    let side = bisect(&wg);
    let (mut left, mut right) = (Vec::new(), Vec::new());
    for (i, &v) in subset.iter().enumerate() {
        if side[i] {
            left.push(v);
        } else {
            right.push(v);
        }
    }
    drop(side);
    split_recursive(
        graph,
        &left,
        levels_left - 1,
        prefix << 1,
        assignment,
        scratch,
    );
    split_recursive(
        graph,
        &right,
        levels_left - 1,
        (prefix << 1) | 1,
        assignment,
        scratch,
    );
}

/// Partition into parts of at most `max_part_size` vertices by choosing the
/// smallest bisection depth that guarantees the capacity.
pub fn partition_with_capacity(graph: &Graph, max_part_size: usize) -> Partition {
    assert!(max_part_size >= 1);
    let n = graph.num_vertices().max(1);
    // Start from the information-theoretic depth and deepen until the
    // *actual* largest part fits; bisection balance keeps this loop to a
    // couple of iterations. Depth is capped where every part is a single
    // vertex (⌈log₂ n⌉ plus slack for odd-split drift).
    let mut depth = (n as f64 / max_part_size as f64).log2().ceil().max(0.0) as u32;
    let max_depth = (n as f64).log2().ceil() as u32 + 2;
    loop {
        let p = hierarchical_bisection(graph, depth);
        if depth >= max_depth || p.part_sizes().iter().all(|&s| s <= max_part_size) {
            return p;
        }
        depth += 1;
    }
}

/// Split a z-ordered weight array into `parts` contiguous index ranges with
/// near-equal weight sums.
///
/// This is the shard splitter for multi-device serving: index `i` is the
/// z-value of grid cell `i`, `weights[i]` is that cell's load proxy (vertex
/// records at build time, object counts once a fleet is loaded), and each
/// returned range is one device's slice of the z-curve. A greedy prefix walk
/// re-targets the remaining weight before each cut, so an early overweight
/// cell does not starve the trailing parts.
///
/// Every part is non-empty while items remain (`weights.len() >= parts`
/// guarantees no empty range); with fewer items than parts the trailing
/// ranges are empty. The ranges always concatenate to `0..weights.len()`.
pub fn weighted_contiguous_ranges(weights: &[u64], parts: usize) -> Vec<std::ops::Range<u32>> {
    assert!(parts >= 1, "parts must be >= 1");
    assert!(
        weights.len() <= u32::MAX as usize,
        "weight array exceeds u32 index space"
    );
    let n = weights.len() as u32;
    let total: u64 = weights.iter().sum();
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0u32;
    let mut consumed = 0u64;
    for p in 0..parts {
        if p + 1 == parts {
            ranges.push(start..n);
            break;
        }
        let parts_left = (parts - p) as u64;
        // Even share of the *remaining* weight, so rounding drift does not
        // accumulate across cuts.
        let target = (total - consumed).div_ceil(parts_left);
        let mut end = start;
        let mut acc = 0u64;
        // Leave at least one item for each remaining part when possible.
        while end < n && (n - end) as usize > parts - p - 1 {
            let w = weights[end as usize];
            // Stop short of the target when overshooting by `w` lands
            // farther from it than stopping here does.
            if acc > 0 && acc + w > target && acc + w - target > target - acc {
                break;
            }
            acc += w;
            end += 1;
            if acc >= target {
                break;
            }
        }
        consumed += acc;
        ranges.push(start..end);
        start = end;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn weighted_ranges_cover_and_balance_uniform() {
        let weights = vec![1u64; 64];
        let ranges = weighted_contiguous_ranges(&weights, 4);
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges[3].end, 64);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start, "ranges must be contiguous");
        }
        for r in &ranges {
            assert_eq!(r.end - r.start, 16, "uniform weights split evenly");
        }
    }

    #[test]
    fn weighted_ranges_track_skewed_weight() {
        // All the weight in the first quarter: the first parts must be
        // narrow and the trailing parts wide, but every part non-empty.
        let mut weights = vec![0u64; 64];
        for w in weights.iter_mut().take(16) {
            *w = 100;
        }
        let ranges = weighted_contiguous_ranges(&weights, 4);
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges[3].end, 64);
        let sums: Vec<u64> = ranges
            .iter()
            .map(|r| weights[r.start as usize..r.end as usize].iter().sum())
            .collect();
        let max = *sums.iter().max().unwrap();
        // Greedy walk keeps the heaviest part within 2x of the even share.
        assert!(max <= 2 * (1600 / 4), "max part weight {max} too skewed");
        for r in &ranges {
            assert!(r.start < r.end, "no empty parts when items >= parts");
        }
    }

    #[test]
    fn weighted_ranges_more_parts_than_items() {
        let weights = vec![5u64; 3];
        let ranges = weighted_contiguous_ranges(&weights, 8);
        assert_eq!(ranges.len(), 8);
        assert_eq!(ranges[7].end, 3);
        let nonempty = ranges.iter().filter(|r| r.start < r.end).count();
        assert_eq!(nonempty, 3, "each item lands in its own part");
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn bisection_balances() {
        let g = gen::toy(11);
        let p = hierarchical_bisection(&g, 1);
        let sizes = p.part_sizes();
        assert_eq!(sizes.len(), 2);
        assert_eq!(sizes[0] + sizes[1], g.num_vertices());
        assert!((sizes[0] as i64 - sizes[1] as i64).abs() <= 1, "{sizes:?}");
    }

    #[test]
    fn depth_two_gives_four_parts() {
        let g = gen::toy(5);
        let p = hierarchical_bisection(&g, 2);
        assert_eq!(p.num_parts, 4);
        let sizes = p.part_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), g.num_vertices());
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 3, "{sizes:?}");
    }

    #[test]
    fn cut_is_better_than_random() {
        let g = gen::grid_city(&gen::GridCityParams {
            rows: 16,
            cols: 16,
            ..Default::default()
        });
        let p = hierarchical_bisection(&g, 1);
        // A random balanced split of a 16x16 grid city cuts ~half the edges;
        // a decent partitioner should cut far fewer.
        let cut = p.cut_edges(&g);
        assert!(
            cut * 4 < g.num_edges(),
            "cut {cut} of {} edges",
            g.num_edges()
        );
    }

    #[test]
    fn capacity_partition_respects_capacity() {
        let g = gen::toy(9);
        for cap in [3usize, 5, 8, 17, 64] {
            let p = partition_with_capacity(&g, cap);
            for (i, s) in p.part_sizes().iter().enumerate() {
                assert!(*s <= cap, "part {i} size {s} > cap {cap}");
            }
        }
    }

    #[test]
    fn capacity_one_vertex_per_part() {
        let g = gen::toy(2);
        let p = partition_with_capacity(&g, 1);
        assert!(p.part_sizes().iter().all(|&s| s <= 1));
    }

    #[test]
    fn zero_depth_single_part() {
        let g = gen::toy(1);
        let p = hierarchical_bisection(&g, 0);
        assert_eq!(p.num_parts, 1);
        assert!(p.assignment.iter().all(|&a| a == 0));
    }

    #[test]
    fn deterministic() {
        let g = gen::toy(77);
        let a = hierarchical_bisection(&g, 3);
        let b = hierarchical_bisection(&g, 3);
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn assignment_ids_in_range() {
        let g = gen::toy(4);
        let p = hierarchical_bisection(&g, 3);
        assert!(p.assignment.iter().all(|&a| a < p.num_parts));
    }
}
