//! Array-based directed graph model.
//!
//! The graph is stored in compressed sparse row (CSR) form twice — once by
//! source vertex (for forward searches) and once by destination vertex (the
//! layout the G-Grid cells need, where every vertex carries the edges it is
//! the *destination* of, see paper §III-A). Edge ids are stable indexes into
//! a single edge array so both adjacency views and all downstream indexes
//! (inverted edge index, object table) can refer to edges by id.

use std::fmt;

/// Network distance. Edge weights are `u32`; path lengths use `u64` so that
/// even the full-USA-scale graphs cannot overflow.
pub type Distance = u64;

/// Sentinel for "unreachable". Chosen well below `u64::MAX` so that
/// `INFINITY + w` never wraps during relaxation.
pub const INFINITY: Distance = u64::MAX / 4;

/// Identifier of a vertex; index into the graph's vertex arrays.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VertexId(pub u32);

/// Identifier of an edge; index into the graph's edge array.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl VertexId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A directed edge `source → dest` with travel cost `weight`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    pub source: VertexId,
    pub dest: VertexId,
    pub weight: u32,
}

/// A directed road network.
///
/// Construct with [`GraphBuilder`]. Immutable after construction: the moving
/// parts of the system (objects, messages) live in the indexes, not here.
#[derive(Clone)]
pub struct Graph {
    edges: Vec<Edge>,
    // CSR by source vertex.
    out_offsets: Vec<u32>,
    out_edges: Vec<EdgeId>,
    // CSR by destination vertex.
    in_offsets: Vec<u32>,
    in_edges: Vec<EdgeId>,
    /// Optional planar coordinates (DIMACS `.co`), used by generators and for
    /// debugging; algorithms never require them.
    coords: Vec<(f32, f32)>,
}

impl Graph {
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out_offsets.len() - 1
    }

    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    #[inline]
    pub fn edge(&self, e: EdgeId) -> Edge {
        self.edges[e.index()]
    }

    /// Edges leaving `v` (v is the source vertex).
    #[inline]
    pub fn out_edges(&self, v: VertexId) -> impl Iterator<Item = EdgeId> + '_ {
        let lo = self.out_offsets[v.index()] as usize;
        let hi = self.out_offsets[v.index() + 1] as usize;
        self.out_edges[lo..hi].iter().copied()
    }

    /// Edges entering `v` (v is the destination vertex). This is the view the
    /// graph grid stores per vertex (paper §III-A).
    #[inline]
    pub fn in_edges(&self, v: VertexId) -> impl Iterator<Item = EdgeId> + '_ {
        let lo = self.in_offsets[v.index()] as usize;
        let hi = self.in_offsets[v.index() + 1] as usize;
        self.in_edges[lo..hi].iter().copied()
    }

    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        (self.out_offsets[v.index() + 1] - self.out_offsets[v.index()]) as usize
    }

    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        (self.in_offsets[v.index() + 1] - self.in_offsets[v.index()]) as usize
    }

    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.num_vertices() as u32).map(VertexId)
    }

    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.num_edges() as u32).map(EdgeId)
    }

    /// Planar coordinate of `v`, or `(0, 0)` when the graph carries none.
    #[inline]
    pub fn coord(&self, v: VertexId) -> (f32, f32) {
        self.coords.get(v.index()).copied().unwrap_or((0.0, 0.0))
    }

    pub fn has_coords(&self) -> bool {
        !self.coords.is_empty()
    }

    /// Approximate resident size in bytes; used by the index-size experiment
    /// (Fig 6) to account for the raw graph each index embeds.
    pub fn heap_size_bytes(&self) -> usize {
        self.edges.len() * std::mem::size_of::<Edge>()
            + (self.out_offsets.len() + self.in_offsets.len()) * 4
            + (self.out_edges.len() + self.in_edges.len()) * 4
            + self.coords.len() * 8
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("vertices", &self.num_vertices())
            .field("edges", &self.num_edges())
            .finish()
    }
}

/// Incremental builder for [`Graph`].
#[derive(Default)]
pub struct GraphBuilder {
    num_vertices: u32,
    edges: Vec<Edge>,
    coords: Vec<(f32, f32)>,
}

impl GraphBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-declare `n` vertices (ids `0..n`).
    pub fn with_vertices(n: usize) -> Self {
        Self {
            num_vertices: n as u32,
            edges: Vec::new(),
            coords: Vec::new(),
        }
    }

    /// Add a vertex and return its id.
    pub fn add_vertex(&mut self) -> VertexId {
        let id = VertexId(self.num_vertices);
        self.num_vertices += 1;
        id
    }

    /// Add a vertex with a planar coordinate.
    pub fn add_vertex_at(&mut self, x: f32, y: f32) -> VertexId {
        let id = self.add_vertex();
        if self.coords.len() < id.index() {
            self.coords.resize(id.index(), (0.0, 0.0));
        }
        self.coords.push((x, y));
        id
    }

    /// Add a directed edge and return its id.
    ///
    /// # Panics
    /// Panics if either endpoint has not been declared or if `weight == 0`
    /// (zero-weight road segments break the strictly-positive-distance
    /// assumptions of every search in the workspace).
    pub fn add_edge(&mut self, source: VertexId, dest: VertexId, weight: u32) -> EdgeId {
        assert!(
            source.0 < self.num_vertices && dest.0 < self.num_vertices,
            "edge endpoint out of range"
        );
        assert!(weight > 0, "edge weight must be positive");
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge {
            source,
            dest,
            weight,
        });
        id
    }

    /// Add a pair of directed edges modelling an undirected road segment.
    pub fn add_bidirectional(&mut self, a: VertexId, b: VertexId, weight: u32) -> (EdgeId, EdgeId) {
        (self.add_edge(a, b, weight), self.add_edge(b, a, weight))
    }

    pub fn num_vertices(&self) -> usize {
        self.num_vertices as usize
    }

    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalise into CSR form.
    pub fn build(mut self) -> Graph {
        let n = self.num_vertices as usize;
        if !self.coords.is_empty() {
            self.coords.resize(n, (0.0, 0.0));
        }
        let (out_offsets, out_edges) = csr_by(&self.edges, n, |e| e.source);
        let (in_offsets, in_edges) = csr_by(&self.edges, n, |e| e.dest);
        Graph {
            edges: self.edges,
            out_offsets,
            out_edges,
            in_offsets,
            in_edges,
            coords: self.coords,
        }
    }
}

/// Build a CSR adjacency keyed by `key(edge)` using counting sort, preserving
/// edge-id order within each bucket.
fn csr_by(edges: &[Edge], n: usize, key: impl Fn(&Edge) -> VertexId) -> (Vec<u32>, Vec<EdgeId>) {
    let mut offsets = vec![0u32; n + 1];
    for e in edges {
        offsets[key(e).index() + 1] += 1;
    }
    for i in 1..=n {
        offsets[i] += offsets[i - 1];
    }
    let mut cursor = offsets.clone();
    let mut adj = vec![EdgeId(0); edges.len()];
    for (i, e) in edges.iter().enumerate() {
        let k = key(e).index();
        adj[cursor[k] as usize] = EdgeId(i as u32);
        cursor[k] += 1;
    }
    (offsets, adj)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3, plus back edge 3 -> 0.
        let mut b = GraphBuilder::with_vertices(4);
        b.add_edge(VertexId(0), VertexId(1), 2);
        b.add_edge(VertexId(1), VertexId(3), 2);
        b.add_edge(VertexId(0), VertexId(2), 1);
        b.add_edge(VertexId(2), VertexId(3), 1);
        b.add_edge(VertexId(3), VertexId(0), 10);
        b.build()
    }

    #[test]
    fn counts() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    fn out_adjacency() {
        let g = diamond();
        let outs: Vec<_> = g.out_edges(VertexId(0)).map(|e| g.edge(e).dest).collect();
        assert_eq!(outs, vec![VertexId(1), VertexId(2)]);
        assert_eq!(g.out_degree(VertexId(3)), 1);
    }

    #[test]
    fn in_adjacency() {
        let g = diamond();
        let ins: Vec<_> = g.in_edges(VertexId(3)).map(|e| g.edge(e).source).collect();
        assert_eq!(ins, vec![VertexId(1), VertexId(2)]);
        assert_eq!(g.in_degree(VertexId(0)), 1);
    }

    #[test]
    fn edge_lookup_is_stable() {
        let mut b = GraphBuilder::with_vertices(2);
        let e0 = b.add_edge(VertexId(0), VertexId(1), 7);
        let e1 = b.add_edge(VertexId(1), VertexId(0), 9);
        let g = b.build();
        assert_eq!(g.edge(e0).weight, 7);
        assert_eq!(g.edge(e1).weight, 9);
        assert_eq!(g.edge(e1).source, VertexId(1));
    }

    #[test]
    fn bidirectional_adds_two_edges() {
        let mut b = GraphBuilder::with_vertices(2);
        let (ab, ba) = b.add_bidirectional(VertexId(0), VertexId(1), 5);
        let g = b.build();
        assert_eq!(g.edge(ab).source, VertexId(0));
        assert_eq!(g.edge(ba).source, VertexId(1));
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn zero_weight_rejected() {
        let mut b = GraphBuilder::with_vertices(2);
        b.add_edge(VertexId(0), VertexId(1), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dangling_edge_rejected() {
        let mut b = GraphBuilder::with_vertices(1);
        b.add_edge(VertexId(0), VertexId(1), 1);
    }

    #[test]
    fn coords_default_to_origin() {
        let g = diamond();
        assert!(!g.has_coords());
        assert_eq!(g.coord(VertexId(2)), (0.0, 0.0));
    }

    #[test]
    fn coords_round_trip() {
        let mut b = GraphBuilder::new();
        let v = b.add_vertex_at(1.5, -2.0);
        let w = b.add_vertex_at(3.0, 4.0);
        b.add_edge(v, w, 1);
        let g = b.build();
        assert!(g.has_coords());
        assert_eq!(g.coord(v), (1.5, -2.0));
        assert_eq!(g.coord(w), (3.0, 4.0));
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}
