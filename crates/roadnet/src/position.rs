//! Positions of objects on edges.
//!
//! Moving objects and queries are not located *at* vertices but *on* edges:
//! the paper's update message carries `⟨o, e, d, t⟩` where `d` is the distance
//! from the source vertex of edge `e` to the object (§II).

use crate::graph::{Distance, EdgeId, Graph};

/// A location on a directed edge: `offset` units of weight past the edge's
/// source vertex. Invariant: `offset <= weight(edge)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EdgePosition {
    pub edge: EdgeId,
    pub offset: u32,
}

impl EdgePosition {
    pub fn new(edge: EdgeId, offset: u32) -> Self {
        Self { edge, offset }
    }

    /// Position at the source endpoint of `edge`.
    pub fn at_source(edge: EdgeId) -> Self {
        Self { edge, offset: 0 }
    }

    /// Check the offset against the graph's edge weight.
    pub fn is_valid(&self, graph: &Graph) -> bool {
        self.edge.index() < graph.num_edges() && self.offset <= graph.edge(self.edge).weight
    }

    /// Cost remaining to reach the destination vertex of the edge.
    pub fn to_dest(&self, graph: &Graph) -> Distance {
        (graph.edge(self.edge).weight - self.offset) as Distance
    }

    /// Cost already travelled from the source vertex of the edge.
    pub fn from_source(&self) -> Distance {
        self.offset as Distance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphBuilder, VertexId};

    fn line() -> Graph {
        let mut b = GraphBuilder::with_vertices(3);
        b.add_edge(VertexId(0), VertexId(1), 10);
        b.add_edge(VertexId(1), VertexId(2), 5);
        b.build()
    }

    #[test]
    fn validity() {
        let g = line();
        assert!(EdgePosition::new(EdgeId(0), 0).is_valid(&g));
        assert!(EdgePosition::new(EdgeId(0), 10).is_valid(&g));
        assert!(!EdgePosition::new(EdgeId(0), 11).is_valid(&g));
        assert!(!EdgePosition::new(EdgeId(9), 0).is_valid(&g));
    }

    #[test]
    fn residual_costs() {
        let g = line();
        let p = EdgePosition::new(EdgeId(0), 3);
        assert_eq!(p.from_source(), 3);
        assert_eq!(p.to_dest(&g), 7);
    }

    #[test]
    fn at_source_has_zero_offset() {
        let g = line();
        let p = EdgePosition::at_source(EdgeId(1));
        assert_eq!(p.from_source(), 0);
        assert_eq!(p.to_dest(&g), 5);
    }
}
