//! Strongly connected components (iterative Tarjan).
//!
//! Road networks must be strongly connected for kNN semantics to be total
//! (every object reachable from every query). The generators guarantee it
//! by construction; this module lets callers *verify* it for imported data
//! (real DIMACS files sometimes have disconnected one-way stubs) and trim
//! graphs down to their largest component.

use crate::graph::{Graph, GraphBuilder, VertexId};

/// Component id per vertex, `0..num_components`.
pub struct SccResult {
    pub component_of: Vec<u32>,
    pub num_components: u32,
}

impl SccResult {
    /// Sizes of each component.
    pub fn component_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_components as usize];
        for &c in &self.component_of {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// Id of the largest component.
    pub fn largest(&self) -> u32 {
        self.component_sizes()
            .iter()
            .enumerate()
            .max_by_key(|&(_, s)| s)
            .map(|(i, _)| i as u32)
            .unwrap_or(0)
    }
}

/// Compute strongly connected components (iterative Tarjan — safe on large
/// graphs, no recursion).
pub fn strongly_connected_components(graph: &Graph) -> SccResult {
    let n = graph.num_vertices();
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut component_of = vec![0u32; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut num_components = 0u32;

    // Explicit DFS frames: (vertex, iterator position over out-edges).
    let mut frames: Vec<(u32, usize)> = Vec::new();

    // Out-neighbour snapshot, built once: resuming a DFS frame must not
    // rebuild the adjacency list (that would cost O(deg²) per vertex).
    let adjacency: Vec<Vec<u32>> = (0..n as u32)
        .map(|v| {
            graph
                .out_edges(VertexId(v))
                .map(|e| graph.edge(e).dest.0)
                .collect()
        })
        .collect();

    for start in 0..n as u32 {
        if index[start as usize] != UNSET {
            continue;
        }
        frames.push((start, 0));
        index[start as usize] = next_index;
        lowlink[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;

        while let Some(&mut (v, ref mut ei)) = frames.last_mut() {
            let out = &adjacency[v as usize];
            if *ei < out.len() {
                let w = out[*ei];
                *ei += 1;
                if index[w as usize] == UNSET {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    // v is a root: pop its component.
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        component_of[w as usize] = num_components;
                        if w == v {
                            break;
                        }
                    }
                    num_components += 1;
                }
            }
        }
    }

    SccResult {
        component_of,
        num_components,
    }
}

/// Whether the whole graph is one strongly connected component.
pub fn is_strongly_connected(graph: &Graph) -> bool {
    graph.num_vertices() <= 1 || strongly_connected_components(graph).num_components == 1
}

/// Restrict `graph` to its largest strongly connected component. Returns
/// the new graph and, for each new vertex, its original id.
pub fn largest_component(graph: &Graph) -> (Graph, Vec<VertexId>) {
    let scc = strongly_connected_components(graph);
    let keep = scc.largest();
    let mut old_to_new = vec![u32::MAX; graph.num_vertices()];
    let mut new_to_old = Vec::new();
    for v in graph.vertices() {
        if scc.component_of[v.index()] == keep {
            old_to_new[v.index()] = new_to_old.len() as u32;
            new_to_old.push(v);
        }
    }
    let mut b = GraphBuilder::with_vertices(new_to_old.len());
    for e in graph.edge_ids() {
        let edge = graph.edge(e);
        let (s, d) = (
            old_to_new[edge.source.index()],
            old_to_new[edge.dest.index()],
        );
        if s != u32::MAX && d != u32::MAX {
            b.add_edge(VertexId(s), VertexId(d), edge.weight);
        }
    }
    (b.build(), new_to_old)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::graph::GraphBuilder;

    #[test]
    fn single_cycle_is_one_component() {
        let mut b = GraphBuilder::with_vertices(3);
        b.add_edge(VertexId(0), VertexId(1), 1);
        b.add_edge(VertexId(1), VertexId(2), 1);
        b.add_edge(VertexId(2), VertexId(0), 1);
        let g = b.build();
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn dag_splits_into_singletons() {
        let mut b = GraphBuilder::with_vertices(3);
        b.add_edge(VertexId(0), VertexId(1), 1);
        b.add_edge(VertexId(1), VertexId(2), 1);
        let g = b.build();
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.num_components, 3);
        assert!(!is_strongly_connected(&g));
    }

    #[test]
    fn two_cycles_with_bridge() {
        // Cycle {0,1} → bridge → cycle {2,3}.
        let mut b = GraphBuilder::with_vertices(4);
        b.add_bidirectional(VertexId(0), VertexId(1), 1);
        b.add_edge(VertexId(1), VertexId(2), 1); // one-way bridge
        b.add_bidirectional(VertexId(2), VertexId(3), 1);
        let g = b.build();
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.num_components, 2);
        assert_eq!(scc.component_sizes().iter().sum::<usize>(), 4);
        assert_ne!(scc.component_of[0], scc.component_of[2]);
        assert_eq!(scc.component_of[0], scc.component_of[1]);
    }

    #[test]
    fn generated_cities_verify_connected() {
        for seed in [1u64, 5, 9] {
            assert!(is_strongly_connected(&gen::toy(seed)));
        }
    }

    #[test]
    fn largest_component_extraction() {
        // Strong 3-cycle plus a dangling one-way tail.
        let mut b = GraphBuilder::with_vertices(5);
        b.add_edge(VertexId(0), VertexId(1), 1);
        b.add_edge(VertexId(1), VertexId(2), 1);
        b.add_edge(VertexId(2), VertexId(0), 1);
        b.add_edge(VertexId(2), VertexId(3), 1);
        b.add_edge(VertexId(3), VertexId(4), 1);
        let g = b.build();
        let (core, map) = largest_component(&g);
        assert_eq!(core.num_vertices(), 3);
        assert_eq!(core.num_edges(), 3);
        assert!(is_strongly_connected(&core));
        assert_eq!(map.len(), 3);
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let g = GraphBuilder::new().build();
        assert!(is_strongly_connected(&g));
        let mut b = GraphBuilder::with_vertices(1);
        let _ = &mut b;
        assert!(is_strongly_connected(&b.build()));
    }
}
