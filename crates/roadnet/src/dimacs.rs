//! Reader/writer for the 9th DIMACS Implementation Challenge formats.
//!
//! The paper's six datasets (NY … full USA) are distributed as a `.gr` graph
//! file (`p sp n m` header, `a u v w` arc lines, 1-indexed vertices) plus an
//! optional `.co` coordinate file (`v id x y` lines). This module parses and
//! writes both, so the experiments run unmodified on the real data when it is
//! available; the offline experiments use [`crate::gen`] instead.

use std::fmt;
use std::io::{self, BufRead, Write};

use crate::graph::{Graph, GraphBuilder, VertexId};

/// Errors from DIMACS parsing.
#[derive(Debug)]
pub enum DimacsError {
    Io(io::Error),
    /// Malformed line with its 1-based line number.
    Parse {
        line: usize,
        message: String,
    },
    MissingHeader,
}

impl fmt::Display for DimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimacsError::Io(e) => write!(f, "i/o error: {e}"),
            DimacsError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            DimacsError::MissingHeader => write!(f, "missing `p sp` header line"),
        }
    }
}

impl std::error::Error for DimacsError {}

impl From<io::Error> for DimacsError {
    fn from(e: io::Error) -> Self {
        DimacsError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> DimacsError {
    DimacsError::Parse {
        line,
        message: message.into(),
    }
}

/// Parse a `.gr` graph file.
pub fn read_gr<R: BufRead>(reader: R) -> Result<Graph, DimacsError> {
    let mut builder: Option<GraphBuilder> = None;
    let mut declared_arcs = 0usize;
    let mut seen_arcs = 0usize;

    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        match parts.next() {
            Some("p") => {
                if parts.next() != Some("sp") {
                    return Err(parse_err(lineno, "expected `p sp n m`"));
                }
                let n: usize = parse_field(parts.next(), lineno, "vertex count")?;
                declared_arcs = parse_field(parts.next(), lineno, "arc count")?;
                builder = Some(GraphBuilder::with_vertices(n));
            }
            Some("a") => {
                let b = builder.as_mut().ok_or(DimacsError::MissingHeader)?;
                let u: u32 = parse_field(parts.next(), lineno, "arc source")?;
                let v: u32 = parse_field(parts.next(), lineno, "arc dest")?;
                let w: u32 = parse_field(parts.next(), lineno, "arc weight")?;
                if u == 0
                    || v == 0
                    || u as usize > b.num_vertices()
                    || v as usize > b.num_vertices()
                {
                    return Err(parse_err(lineno, "arc endpoint out of range"));
                }
                // DIMACS is 1-indexed; weights of 0 occur in some files and
                // are clamped to 1 to preserve positive-distance invariants.
                b.add_edge(VertexId(u - 1), VertexId(v - 1), w.max(1));
                seen_arcs += 1;
            }
            Some(other) => {
                return Err(parse_err(lineno, format!("unknown line type `{other}`")));
            }
            None => unreachable!("empty lines filtered above"),
        }
    }

    let builder = builder.ok_or(DimacsError::MissingHeader)?;
    if seen_arcs != declared_arcs {
        return Err(parse_err(
            0,
            format!("header declared {declared_arcs} arcs, file had {seen_arcs}"),
        ));
    }
    Ok(builder.build())
}

/// Parse a `.co` coordinate file; returns `(x, y)` per vertex (0-indexed).
pub fn read_co<R: BufRead>(reader: R) -> Result<Vec<(f32, f32)>, DimacsError> {
    let mut coords: Vec<(f32, f32)> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('p') {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        if parts.next() != Some("v") {
            return Err(parse_err(lineno, "expected `v id x y`"));
        }
        let id: usize = parse_field(parts.next(), lineno, "vertex id")?;
        let x: i64 = parse_field(parts.next(), lineno, "x")?;
        let y: i64 = parse_field(parts.next(), lineno, "y")?;
        if id == 0 {
            return Err(parse_err(lineno, "vertex id must be >= 1"));
        }
        if coords.len() < id {
            coords.resize(id, (0.0, 0.0));
        }
        coords[id - 1] = (x as f32, y as f32);
    }
    Ok(coords)
}

/// Write a graph as a `.gr` file.
pub fn write_gr<W: Write>(graph: &Graph, mut w: W) -> io::Result<()> {
    writeln!(w, "c generated by roadnet")?;
    writeln!(w, "p sp {} {}", graph.num_vertices(), graph.num_edges())?;
    for e in graph.edge_ids() {
        let edge = graph.edge(e);
        writeln!(
            w,
            "a {} {} {}",
            edge.source.0 + 1,
            edge.dest.0 + 1,
            edge.weight
        )?;
    }
    Ok(())
}

fn parse_field<T: std::str::FromStr>(
    field: Option<&str>,
    line: usize,
    what: &str,
) -> Result<T, DimacsError> {
    field
        .ok_or_else(|| parse_err(line, format!("missing {what}")))?
        .parse()
        .map_err(|_| parse_err(line, format!("invalid {what}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeId, GraphBuilder};

    const SAMPLE: &str = "c sample graph\n\
                          p sp 3 3\n\
                          a 1 2 4\n\
                          a 2 3 5\n\
                          a 3 1 6\n";

    #[test]
    fn parse_simple_gr() {
        let g = read_gr(SAMPLE.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edge(EdgeId(0)).weight, 4);
        assert_eq!(g.edge(EdgeId(2)).dest, VertexId(0));
    }

    #[test]
    fn round_trip() {
        let mut b = GraphBuilder::with_vertices(4);
        b.add_edge(VertexId(0), VertexId(3), 9);
        b.add_edge(VertexId(3), VertexId(1), 2);
        let g = b.build();
        let mut out = Vec::new();
        write_gr(&g, &mut out).unwrap();
        let g2 = read_gr(out.as_slice()).unwrap();
        assert_eq!(g2.num_vertices(), 4);
        assert_eq!(g2.num_edges(), 2);
        assert_eq!(g2.edge(EdgeId(0)).dest, VertexId(3));
        assert_eq!(g2.edge(EdgeId(1)).weight, 2);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "c hi\n\nc another\np sp 2 1\nc mid\na 1 2 3\n";
        let g = read_gr(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn zero_weight_clamped_to_one() {
        let text = "p sp 2 1\na 1 2 0\n";
        let g = read_gr(text.as_bytes()).unwrap();
        assert_eq!(g.edge(EdgeId(0)).weight, 1);
    }

    #[test]
    fn missing_header_rejected() {
        let err = read_gr("a 1 2 3\n".as_bytes()).unwrap_err();
        assert!(matches!(err, DimacsError::MissingHeader));
    }

    #[test]
    fn arc_count_mismatch_rejected() {
        let err = read_gr("p sp 2 2\na 1 2 3\n".as_bytes()).unwrap_err();
        assert!(matches!(err, DimacsError::Parse { .. }));
    }

    #[test]
    fn out_of_range_endpoint_rejected() {
        let err = read_gr("p sp 2 1\na 1 5 3\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn unknown_line_type_rejected() {
        let err = read_gr("p sp 1 0\nq nonsense\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown line type"));
    }

    #[test]
    fn parse_coordinates() {
        let text = "c coords\np aux sp co 2\nv 1 -73000000 40000000\nv 2 -74000000 41000000\n";
        let coords = read_co(text.as_bytes()).unwrap();
        assert_eq!(coords.len(), 2);
        assert_eq!(coords[0], (-73000000.0, 40000000.0));
    }

    #[test]
    fn coordinate_id_zero_rejected() {
        let err = read_co("v 0 1 2\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("must be >= 1"));
    }
}
