//! # roadnet — road network substrate
//!
//! Directed road-network graphs and the supporting algorithms the G-Grid
//! reproduction is built on:
//!
//! * [`Graph`] — an array-based (CSR) directed graph with integer weights,
//!   out- and in-adjacency, and optional planar coordinates.
//! * [`dimacs`] — reader/writer for the 9th DIMACS Implementation Challenge
//!   `.gr` / `.co` formats used by the paper's six datasets.
//! * [`gen`] — deterministic synthetic road-network generators shaped like the
//!   paper's datasets (Table II), for environments without the real files.
//! * [`partition`] — a multilevel recursive-bisection graph partitioner in the
//!   style of Karypis–Kumar (METIS), used to build grid cells and V-Tree nodes.
//! * [`zorder`] — Morton (Z-curve) encoding used to linearise grid cells.
//! * [`dijkstra`] — shortest-path searches: single-source, bounded-radius, and
//!   an exact reference kNN over objects located on edges (ground truth for
//!   every index in the workspace).
//! * [`position`] — positions of moving objects on edges and network distance
//!   between such positions.
//! * [`scc`] — strongly-connected-component analysis for validating and
//!   trimming imported road networks.
//!
//! All generators and algorithms are deterministic given a seed so that every
//! experiment in the repository is reproducible.

pub mod dijkstra;
pub mod dimacs;
pub mod gen;
pub mod graph;
pub mod partition;
pub mod position;
pub mod scc;
pub mod zorder;

pub use dijkstra::{DijkstraEngine, DijkstraScratch, SearchBounds};
pub use graph::{Distance, EdgeId, Graph, GraphBuilder, VertexId, INFINITY};
pub use position::EdgePosition;
