//! Morton (Z-curve) encoding.
//!
//! The G-Grid stores its `2^ψ × 2^ψ` cells in a one-dimensional array ordered
//! by Z-value (paper §III-A): the Z-value of cell `(x, y)` interleaves the
//! binary representations of `y` and `x`. Nearby cells get nearby array slots,
//! which is what gives the GPU kernels their memory locality.

/// Spread the low 16 bits of `v` so bit `i` moves to bit `2i`.
#[inline]
fn part1by1(v: u32) -> u32 {
    let mut v = v & 0x0000_ffff;
    v = (v | (v << 8)) & 0x00ff_00ff;
    v = (v | (v << 4)) & 0x0f0f_0f0f;
    v = (v | (v << 2)) & 0x3333_3333;
    v = (v | (v << 1)) & 0x5555_5555;
    v
}

/// Inverse of [`part1by1`]: compact every other bit.
#[inline]
fn compact1by1(v: u32) -> u32 {
    let mut v = v & 0x5555_5555;
    v = (v | (v >> 1)) & 0x3333_3333;
    v = (v | (v >> 2)) & 0x0f0f_0f0f;
    v = (v | (v >> 4)) & 0x00ff_00ff;
    v = (v | (v >> 8)) & 0x0000_ffff;
    v
}

/// Z-value of grid coordinate `(x, y)`.
///
/// Matches the paper's example: `(x, y) = (3, 4)` → `0b100101` = 37, obtained
/// by interleaving `y = 100₂` (odd bit positions) with `x = 011₂` (even).
#[inline]
pub fn encode(x: u32, y: u32) -> u32 {
    debug_assert!(x < (1 << 16) && y < (1 << 16), "coordinate out of range");
    part1by1(x) | (part1by1(y) << 1)
}

/// Grid coordinate `(x, y)` for Z-value `z`.
#[inline]
pub fn decode(z: u32) -> (u32, u32) {
    (compact1by1(z), compact1by1(z >> 1))
}

/// The four axis-neighbours of `(x, y)` inside a `side × side` grid.
pub fn grid_neighbors(x: u32, y: u32, side: u32) -> impl Iterator<Item = (u32, u32)> {
    let deltas = [(0i64, 1i64), (0, -1), (1, 0), (-1, 0)];
    deltas.into_iter().filter_map(move |(dx, dy)| {
        let nx = x as i64 + dx;
        let ny = y as i64 + dy;
        if nx >= 0 && ny >= 0 && (nx as u32) < side && (ny as u32) < side {
            Some((nx as u32, ny as u32))
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example() {
        // Paper §III-A: cell (3, 4) has Z-value 37.
        assert_eq!(encode(3, 4), 37);
    }

    #[test]
    fn origin_is_zero() {
        assert_eq!(encode(0, 0), 0);
    }

    #[test]
    fn unit_steps() {
        assert_eq!(encode(1, 0), 1);
        assert_eq!(encode(0, 1), 2);
        assert_eq!(encode(1, 1), 3);
    }

    #[test]
    fn encode_decode_round_trip() {
        for x in 0..64 {
            for y in 0..64 {
                assert_eq!(decode(encode(x, y)), (x, y));
            }
        }
    }

    #[test]
    fn z_values_are_unique_and_dense() {
        let side = 16u32;
        let mut seen = vec![false; (side * side) as usize];
        for x in 0..side {
            for y in 0..side {
                let z = encode(x, y) as usize;
                assert!(z < seen.len());
                assert!(!seen[z], "duplicate z-value");
                seen[z] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn neighbors_interior() {
        let n: Vec<_> = grid_neighbors(5, 5, 16).collect();
        assert_eq!(n.len(), 4);
        assert!(n.contains(&(4, 5)) && n.contains(&(6, 5)));
        assert!(n.contains(&(5, 4)) && n.contains(&(5, 6)));
    }

    #[test]
    fn neighbors_corner() {
        let n: Vec<_> = grid_neighbors(0, 0, 16).collect();
        assert_eq!(n.len(), 2);
        assert!(n.contains(&(1, 0)) && n.contains(&(0, 1)));
    }

    #[test]
    fn neighbors_degenerate_grid() {
        let n: Vec<_> = grid_neighbors(0, 0, 1).collect();
        assert!(n.is_empty());
    }

    #[test]
    fn max_coordinate() {
        let m = (1 << 16) - 1;
        assert_eq!(decode(encode(m, m)), (m, m));
    }
}
