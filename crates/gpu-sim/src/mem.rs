//! Device memory accounting.
//!
//! The simulator does not copy real bytes around — kernels run on host data —
//! but every index that claims residence on the device must *reserve* its
//! footprint here. Capacity is enforced: the paper omits V-Tree (G) on the
//! USA dataset precisely because its index exceeds the card's 5 GB, and the
//! reproduction must fail the same way.
//!
//! Two layers:
//!
//! * [`DeviceMemory`] — raw byte reservations against the card's capacity
//!   (used for structures sized once, like the graph-grid mirror).
//! * [`BufferTable`] — a handle-based allocator on top of it for state that
//!   comes and goes (resident consolidated cell lists): each allocation
//!   returns an opaque [`BufferId`] remembering its size, so frees and
//!   resizes can't desynchronise the ledger, and an occupancy ledger
//!   ([`ResidencyLedger`]) tracks live buffers / bytes / churn for the
//!   eviction instrumentation.

use std::collections::HashMap;
use std::fmt;

/// Error returned when a reservation would exceed device memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfDeviceMemory {
    pub requested: u64,
    pub in_use: u64,
    pub capacity: u64,
}

impl fmt::Display for OutOfDeviceMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of device memory: requested {} bytes with {}/{} in use",
            self.requested, self.in_use, self.capacity
        )
    }
}

impl std::error::Error for OutOfDeviceMemory {}

/// Tracks reserved device memory against a capacity.
#[derive(Clone, Debug)]
pub struct DeviceMemory {
    capacity: u64,
    in_use: u64,
    peak: u64,
}

impl DeviceMemory {
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            in_use: 0,
            peak: 0,
        }
    }

    /// Reserve `bytes`; fails if it would exceed capacity.
    pub fn alloc(&mut self, bytes: u64) -> Result<(), OutOfDeviceMemory> {
        if self.in_use + bytes > self.capacity {
            return Err(OutOfDeviceMemory {
                requested: bytes,
                in_use: self.in_use,
                capacity: self.capacity,
            });
        }
        self.in_use += bytes;
        self.peak = self.peak.max(self.in_use);
        Ok(())
    }

    /// Release `bytes` previously reserved.
    ///
    /// # Panics
    /// Panics if more is freed than is in use (an accounting bug upstream).
    pub fn free(&mut self, bytes: u64) {
        assert!(
            bytes <= self.in_use,
            "freeing more device memory than allocated"
        );
        self.in_use -= bytes;
    }

    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    pub fn peak(&self) -> u64 {
        self.peak
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    pub fn available(&self) -> u64 {
        self.capacity - self.in_use
    }
}

/// Opaque handle to a device buffer allocated through [`BufferTable`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufferId(u64);

/// What a buffer holds — lets instrumentation split resident bytes by
/// subsystem (consolidated cell state vs read-only topology slices).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BufferTag {
    #[default]
    General,
    /// Consolidated per-cell object state (PR 2 residency).
    CellState,
    /// Per-cell CSR topology slices (read-only, immutable).
    Topology,
    /// Read-only replicas of cell state owned by another device (PR 10
    /// read-hot replication) — split out so replica bytes are visibly
    /// charged to the hosting device, never the owner.
    Replica,
}

/// Occupancy ledger of the handle-based allocator: what is resident right
/// now and how much churn got it there.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResidencyLedger {
    /// Buffers currently live.
    pub live_buffers: u64,
    /// Bytes currently reserved through the buffer table.
    pub resident_bytes: u64,
    /// High-water mark of `resident_bytes`.
    pub peak_resident_bytes: u64,
    /// Lifetime allocations (including the alloc half of a resize).
    pub total_allocs: u64,
    /// Lifetime frees (including the free half of a resize).
    pub total_frees: u64,
}

/// Handle-based device allocator: sizes are remembered per buffer, so
/// callers free by handle rather than by byte count.
#[derive(Clone, Debug, Default)]
pub struct BufferTable {
    sizes: HashMap<u64, (u64, BufferTag)>,
    next_id: u64,
    ledger: ResidencyLedger,
}

impl BufferTable {
    /// Reserve a buffer of `bytes` in `mem`; fails (without reserving) when
    /// the card is out of memory. Tagged [`BufferTag::General`].
    pub fn alloc(
        &mut self,
        mem: &mut DeviceMemory,
        bytes: u64,
    ) -> Result<BufferId, OutOfDeviceMemory> {
        self.alloc_tagged(mem, bytes, BufferTag::General)
    }

    /// [`Self::alloc`] with an explicit subsystem tag.
    pub fn alloc_tagged(
        &mut self,
        mem: &mut DeviceMemory,
        bytes: u64,
        tag: BufferTag,
    ) -> Result<BufferId, OutOfDeviceMemory> {
        mem.alloc(bytes)?;
        let id = self.next_id;
        self.next_id += 1;
        self.sizes.insert(id, (bytes, tag));
        self.ledger.live_buffers += 1;
        self.ledger.resident_bytes += bytes;
        self.ledger.total_allocs += 1;
        self.ledger.peak_resident_bytes = self
            .ledger
            .peak_resident_bytes
            .max(self.ledger.resident_bytes);
        Ok(BufferId(id))
    }

    /// Release a buffer, returning the bytes it held.
    ///
    /// # Panics
    /// Panics on an unknown (already freed) handle — a double free upstream.
    pub fn free(&mut self, mem: &mut DeviceMemory, id: BufferId) -> u64 {
        let (bytes, _) = self
            .sizes
            .remove(&id.0)
            .expect("freeing an unknown device buffer");
        mem.free(bytes);
        self.ledger.live_buffers -= 1;
        self.ledger.resident_bytes -= bytes;
        self.ledger.total_frees += 1;
        bytes
    }

    /// Resize a buffer in place: frees the old reservation and reserves the
    /// new size under the same handle. On out-of-memory the buffer is left
    /// freed (the caller was replacing its contents anyway) and the error is
    /// returned.
    pub fn resize(
        &mut self,
        mem: &mut DeviceMemory,
        id: BufferId,
        bytes: u64,
    ) -> Result<(), OutOfDeviceMemory> {
        let tag = self.sizes.get(&id.0).map(|&(_, t)| t).unwrap_or_default();
        self.free(mem, id);
        mem.alloc(bytes)?;
        self.sizes.insert(id.0, (bytes, tag));
        self.ledger.live_buffers += 1;
        self.ledger.resident_bytes += bytes;
        self.ledger.total_allocs += 1;
        self.ledger.peak_resident_bytes = self
            .ledger
            .peak_resident_bytes
            .max(self.ledger.resident_bytes);
        Ok(())
    }

    /// Size of a live buffer, if the handle is valid.
    pub fn bytes_of(&self, id: BufferId) -> Option<u64> {
        self.sizes.get(&id.0).map(|&(b, _)| b)
    }

    /// Bytes currently resident under `tag`.
    pub fn bytes_of_tag(&self, tag: BufferTag) -> u64 {
        self.sizes
            .values()
            .filter(|&&(_, t)| t == tag)
            .map(|&(b, _)| b)
            .sum()
    }

    pub fn ledger(&self) -> &ResidencyLedger {
        &self.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut m = DeviceMemory::new(1000);
        m.alloc(400).unwrap();
        m.alloc(500).unwrap();
        assert_eq!(m.in_use(), 900);
        assert_eq!(m.available(), 100);
        m.free(500);
        assert_eq!(m.in_use(), 400);
        assert_eq!(m.peak(), 900);
    }

    #[test]
    fn over_capacity_rejected() {
        let mut m = DeviceMemory::new(100);
        m.alloc(60).unwrap();
        let err = m.alloc(50).unwrap_err();
        assert_eq!(err.requested, 50);
        assert_eq!(err.in_use, 60);
        assert_eq!(m.in_use(), 60, "failed alloc must not reserve");
    }

    #[test]
    fn exact_fit_allowed() {
        let mut m = DeviceMemory::new(100);
        m.alloc(100).unwrap();
        assert_eq!(m.available(), 0);
    }

    #[test]
    #[should_panic(expected = "freeing more")]
    fn over_free_panics() {
        let mut m = DeviceMemory::new(100);
        m.alloc(10).unwrap();
        m.free(11);
    }

    #[test]
    fn error_displays() {
        let e = OutOfDeviceMemory {
            requested: 5,
            in_use: 1,
            capacity: 4,
        };
        assert!(e.to_string().contains("out of device memory"));
    }

    #[test]
    fn buffer_table_tracks_sizes_and_ledger() {
        let mut mem = DeviceMemory::new(1000);
        let mut tab = BufferTable::default();
        let a = tab.alloc(&mut mem, 300).unwrap();
        let b = tab.alloc(&mut mem, 200).unwrap();
        assert_ne!(a, b);
        assert_eq!(tab.bytes_of(a), Some(300));
        assert_eq!(mem.in_use(), 500);
        let l = *tab.ledger();
        assert_eq!((l.live_buffers, l.resident_bytes), (2, 500));
        assert_eq!(tab.free(&mut mem, a), 300);
        assert_eq!(mem.in_use(), 200);
        assert_eq!(tab.bytes_of(a), None);
        assert_eq!(tab.ledger().total_frees, 1);
        assert_eq!(tab.ledger().peak_resident_bytes, 500);
    }

    #[test]
    fn buffer_resize_reaccounts() {
        let mut mem = DeviceMemory::new(1000);
        let mut tab = BufferTable::default();
        let a = tab.alloc(&mut mem, 100).unwrap();
        tab.resize(&mut mem, a, 400).unwrap();
        assert_eq!(tab.bytes_of(a), Some(400));
        assert_eq!(mem.in_use(), 400);
        // Resize past capacity leaves the buffer freed, not half-counted.
        assert!(tab.resize(&mut mem, a, 2000).is_err());
        assert_eq!(tab.bytes_of(a), None);
        assert_eq!(mem.in_use(), 0);
    }

    #[test]
    fn buffer_alloc_over_capacity_rejected() {
        let mut mem = DeviceMemory::new(100);
        let mut tab = BufferTable::default();
        assert!(tab.alloc(&mut mem, 101).is_err());
        assert_eq!(tab.ledger().live_buffers, 0);
        assert_eq!(mem.in_use(), 0);
    }

    #[test]
    fn tags_split_resident_bytes() {
        let mut mem = DeviceMemory::new(1000);
        let mut tab = BufferTable::default();
        let a = tab
            .alloc_tagged(&mut mem, 100, BufferTag::Topology)
            .unwrap();
        let b = tab
            .alloc_tagged(&mut mem, 200, BufferTag::CellState)
            .unwrap();
        tab.alloc(&mut mem, 50).unwrap();
        assert_eq!(tab.bytes_of_tag(BufferTag::Topology), 100);
        assert_eq!(tab.bytes_of_tag(BufferTag::CellState), 200);
        assert_eq!(tab.bytes_of_tag(BufferTag::General), 50);
        // Resize keeps the tag; free drops it.
        tab.resize(&mut mem, a, 150).unwrap();
        assert_eq!(tab.bytes_of_tag(BufferTag::Topology), 150);
        tab.free(&mut mem, b);
        assert_eq!(tab.bytes_of_tag(BufferTag::CellState), 0);
    }

    #[test]
    #[should_panic(expected = "unknown device buffer")]
    fn buffer_double_free_panics() {
        let mut mem = DeviceMemory::new(100);
        let mut tab = BufferTable::default();
        let a = tab.alloc(&mut mem, 10).unwrap();
        tab.free(&mut mem, a);
        tab.free(&mut mem, a);
    }
}
