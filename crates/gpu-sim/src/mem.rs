//! Device memory accounting.
//!
//! The simulator does not copy real bytes around — kernels run on host data —
//! but every index that claims residence on the device must *reserve* its
//! footprint here. Capacity is enforced: the paper omits V-Tree (G) on the
//! USA dataset precisely because its index exceeds the card's 5 GB, and the
//! reproduction must fail the same way.

use std::fmt;

/// Error returned when a reservation would exceed device memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfDeviceMemory {
    pub requested: u64,
    pub in_use: u64,
    pub capacity: u64,
}

impl fmt::Display for OutOfDeviceMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of device memory: requested {} bytes with {}/{} in use",
            self.requested, self.in_use, self.capacity
        )
    }
}

impl std::error::Error for OutOfDeviceMemory {}

/// Tracks reserved device memory against a capacity.
#[derive(Clone, Debug)]
pub struct DeviceMemory {
    capacity: u64,
    in_use: u64,
    peak: u64,
}

impl DeviceMemory {
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            in_use: 0,
            peak: 0,
        }
    }

    /// Reserve `bytes`; fails if it would exceed capacity.
    pub fn alloc(&mut self, bytes: u64) -> Result<(), OutOfDeviceMemory> {
        if self.in_use + bytes > self.capacity {
            return Err(OutOfDeviceMemory {
                requested: bytes,
                in_use: self.in_use,
                capacity: self.capacity,
            });
        }
        self.in_use += bytes;
        self.peak = self.peak.max(self.in_use);
        Ok(())
    }

    /// Release `bytes` previously reserved.
    ///
    /// # Panics
    /// Panics if more is freed than is in use (an accounting bug upstream).
    pub fn free(&mut self, bytes: u64) {
        assert!(
            bytes <= self.in_use,
            "freeing more device memory than allocated"
        );
        self.in_use -= bytes;
    }

    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    pub fn peak(&self) -> u64 {
        self.peak
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    pub fn available(&self) -> u64 {
        self.capacity - self.in_use
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut m = DeviceMemory::new(1000);
        m.alloc(400).unwrap();
        m.alloc(500).unwrap();
        assert_eq!(m.in_use(), 900);
        assert_eq!(m.available(), 100);
        m.free(500);
        assert_eq!(m.in_use(), 400);
        assert_eq!(m.peak(), 900);
    }

    #[test]
    fn over_capacity_rejected() {
        let mut m = DeviceMemory::new(100);
        m.alloc(60).unwrap();
        let err = m.alloc(50).unwrap_err();
        assert_eq!(err.requested, 50);
        assert_eq!(err.in_use, 60);
        assert_eq!(m.in_use(), 60, "failed alloc must not reserve");
    }

    #[test]
    fn exact_fit_allowed() {
        let mut m = DeviceMemory::new(100);
        m.alloc(100).unwrap();
        assert_eq!(m.available(), 0);
    }

    #[test]
    #[should_panic(expected = "freeing more")]
    fn over_free_panics() {
        let mut m = DeviceMemory::new(100);
        m.alloc(10).unwrap();
        m.free(11);
    }

    #[test]
    fn error_displays() {
        let e = OutOfDeviceMemory {
            requested: 5,
            in_use: 1,
            capacity: 4,
        };
        assert!(e.to_string().contains("out of device memory"));
    }
}
