//! # gpu-sim — a deterministic SIMT GPU simulator
//!
//! The G-Grid paper runs its message-cleaning and candidate-generation
//! kernels on an NVIDIA Quadro P2000 under CUDA 9.0. This environment has no
//! GPU, so this crate substitutes a *simulator* that preserves what the
//! paper's algorithms actually depend on:
//!
//! * **SIMT semantics** — warps of 32 lanes executing collectives in
//!   lock-step, including the `shuffle_xor` butterfly exchange that the
//!   paper's X-shuffle (Algorithm 3) is built on, block-wide barriers, and
//!   the cost cliff when a "bundle" spans multiple warps (paper Fig 4b).
//! * **An explicit cost model** — simulated time is charged from a simple
//!   analytic model (per-op cycles across the device's cores, memory
//!   bandwidth, kernel-launch overhead) so kernels report a duration that
//!   scales the way a real device's would.
//! * **Device memory with capacity** — allocations fail beyond the card's
//!   memory, which is how the paper's V-Tree (G) baseline drops out of the
//!   USA experiment.
//! * **Host↔device transfers** — every copy is metered (bytes and simulated
//!   time over a PCIe-like link) and copies can be pipelined against compute
//!   the way the paper overlaps message-list upload with cleaning (§V-A).
//!
//! Everything is deterministic: the simulator executes lane programs for
//! real (the algorithms run and their results are used), and the clock is a
//! pure function of the executed operations.

pub mod collective;
pub mod device;
pub mod mem;
pub mod ops;
pub mod spec;
pub mod stream;
pub mod time;
pub mod warp;
pub mod xfer;

pub use collective::{bitonic_sort, partition_by, reduce, top_k_smallest};
pub use device::{Device, KernelCtx, LaunchReport};
pub use mem::{BufferId, BufferTag, OutOfDeviceMemory, ResidencyLedger};
pub use ops::{CostModel, OpCounts};
pub use spec::DeviceSpec;
pub use stream::StreamTimeline;
pub use time::SimNanos;
pub use warp::{Lanes, WarpExecutor};
pub use xfer::{pipelined_makespan, TransferLedger};
