//! Stream timelines: overlap accounting for multi-resource pipelines.
//!
//! [`pipelined_makespan`](crate::xfer::pipelined_makespan) models the fixed
//! copy→compute pattern of one cleaning round. Batched query execution
//! needs something more general: the host refines query *i* while the
//! device runs query *i+1*, so simulated time must be tracked per resource
//! ("stream") with cross-stream dependencies. [`StreamTimeline`] is that
//! scheduler: each stream serialises its own operations, an operation may
//! additionally wait on a `ready` time produced by another stream, and the
//! makespan is when the last stream drains.

use crate::time::SimNanos;

/// A set of serially-executing streams sharing one simulated clock.
#[derive(Clone, Debug)]
pub struct StreamTimeline {
    ends: Vec<SimNanos>,
}

impl StreamTimeline {
    /// Create `streams` empty streams, all at time zero.
    pub fn new(streams: usize) -> Self {
        assert!(streams >= 1, "need at least one stream");
        Self {
            ends: vec![SimNanos::ZERO; streams],
        }
    }

    pub fn num_streams(&self) -> usize {
        self.ends.len()
    }

    /// Schedule an operation of length `dur` on `stream`. It starts at the
    /// later of `ready` (its cross-stream dependency) and the stream's own
    /// previous operation finishing, and runs without preemption. Returns
    /// the operation's end time, usable as `ready` for dependents.
    pub fn push(&mut self, stream: usize, ready: SimNanos, dur: SimNanos) -> SimNanos {
        let start = self.ends[stream].max(ready);
        let end = start + dur;
        self.ends[stream] = end;
        end
    }

    /// Current end time of one stream.
    pub fn end(&self, stream: usize) -> SimNanos {
        self.ends[stream]
    }

    /// Time when every stream has drained.
    pub fn makespan(&self) -> SimNanos {
        self.ends.iter().copied().max().unwrap_or(SimNanos::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stream_serialises() {
        let mut tl = StreamTimeline::new(1);
        let a = tl.push(0, SimNanos::ZERO, SimNanos(10));
        let b = tl.push(0, SimNanos::ZERO, SimNanos(5));
        assert_eq!(a, SimNanos(10));
        assert_eq!(b, SimNanos(15));
        assert_eq!(tl.makespan(), SimNanos(15));
    }

    #[test]
    fn ready_delays_start() {
        let mut tl = StreamTimeline::new(2);
        let d = tl.push(0, SimNanos::ZERO, SimNanos(10));
        // Host op depends on the device op; stream 1 is idle until then.
        let h = tl.push(1, d, SimNanos(7));
        assert_eq!(h, SimNanos(17));
    }

    #[test]
    fn overlap_beats_serial_sum() {
        // Two queries: device 10, host 10 each. Serial = 40; pipelined:
        // device 0..10, 10..20; host 10..20, 20..30.
        let mut tl = StreamTimeline::new(2);
        let mut serial = SimNanos::ZERO;
        for _ in 0..2 {
            let d = tl.push(0, SimNanos::ZERO, SimNanos(10));
            tl.push(1, d, SimNanos(10));
            serial += SimNanos(20);
        }
        assert_eq!(tl.makespan(), SimNanos(30));
        assert!(tl.makespan() < serial);
    }

    #[test]
    fn makespan_never_exceeds_serial_sum() {
        // Any schedule's makespan is bounded by executing everything
        // back-to-back on one stream.
        let durs = [3u64, 8, 1, 12, 5, 9];
        let mut tl = StreamTimeline::new(3);
        let mut serial = SimNanos::ZERO;
        let mut ready = SimNanos::ZERO;
        for (i, &d) in durs.iter().enumerate() {
            ready = tl.push(i % 3, ready, SimNanos(d));
            serial += SimNanos(d);
        }
        assert!(tl.makespan() <= serial);
    }

    #[test]
    fn three_stage_round_trip() {
        // device → host → device dependency chain for one item keeps the
        // device stream's order while respecting the host hop.
        let mut tl = StreamTimeline::new(2);
        let d1 = tl.push(0, SimNanos::ZERO, SimNanos(10)); // device phase q1
        let d2 = tl.push(0, SimNanos::ZERO, SimNanos(10)); // device phase q2
        let r1 = tl.push(1, d1, SimNanos(4)); // host refine q1 (overlaps d2)
        let f1 = tl.push(0, r1, SimNanos(2)); // device finalise q1
        assert_eq!(d2, SimNanos(20));
        assert_eq!(r1, SimNanos(14));
        assert_eq!(f1, SimNanos(22));
    }
}
