//! Device specifications.

/// Hardware parameters of a simulated device.
///
/// These feed the cost model: compute throughput is
/// `num_sms * cores_per_sm * clock_hz` lane-ops per second, memory traffic is
/// charged against `mem_bandwidth_bytes_per_sec`, and host↔device copies
/// against the PCIe-like link.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceSpec {
    pub name: &'static str,
    pub num_sms: u32,
    pub cores_per_sm: u32,
    /// Lanes per warp; `shuffle_xor` is free of synchronisation only within
    /// a warp.
    pub warp_size: u32,
    pub clock_hz: f64,
    pub global_mem_bytes: u64,
    pub mem_bandwidth_bytes_per_sec: f64,
    pub pcie_bandwidth_bytes_per_sec: f64,
    /// Fixed latency per host↔device transfer.
    pub pcie_latency_ns: u64,
    /// Fixed overhead per kernel launch.
    pub launch_overhead_ns: u64,
}

impl DeviceSpec {
    /// The paper's evaluation card: NVIDIA Quadro P2000 — 1024 CUDA cores
    /// (8 SMs × 128), 5 GB GDDR5 at ~140 GB/s, ~1.37 GHz boost, PCIe 3.0 x16.
    pub fn quadro_p2000() -> Self {
        Self {
            name: "Quadro P2000 (simulated)",
            num_sms: 8,
            cores_per_sm: 128,
            warp_size: 32,
            clock_hz: 1.37e9,
            global_mem_bytes: 5 * 1024 * 1024 * 1024,
            mem_bandwidth_bytes_per_sec: 140.0e9,
            pcie_bandwidth_bytes_per_sec: 12.0e9,
            pcie_latency_ns: 10_000,
            launch_overhead_ns: 4_000,
        }
    }

    /// A tiny device for tests: 2 SMs × 32 cores, 1 MB of memory. Small
    /// enough that capacity and serialisation effects are easy to trigger.
    pub fn test_tiny() -> Self {
        Self {
            name: "tiny test device",
            num_sms: 2,
            cores_per_sm: 32,
            warp_size: 32,
            clock_hz: 1.0e9,
            global_mem_bytes: 1024 * 1024,
            mem_bandwidth_bytes_per_sec: 10.0e9,
            pcie_bandwidth_bytes_per_sec: 1.0e9,
            pcie_latency_ns: 1_000,
            launch_overhead_ns: 1_000,
        }
    }

    pub fn total_cores(&self) -> u32 {
        self.num_sms * self.cores_per_sm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2000_matches_paper_hardware() {
        let s = DeviceSpec::quadro_p2000();
        assert_eq!(s.total_cores(), 1024);
        assert_eq!(s.global_mem_bytes, 5 * 1024 * 1024 * 1024);
        assert_eq!(s.warp_size, 32);
    }

    #[test]
    fn tiny_is_small() {
        let s = DeviceSpec::test_tiny();
        assert_eq!(s.total_cores(), 64);
        assert!(s.global_mem_bytes < DeviceSpec::quadro_p2000().global_mem_bytes);
    }
}
