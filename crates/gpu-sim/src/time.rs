//! Simulated time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A simulated duration in nanoseconds.
///
/// Simulated time is a pure function of executed operations, so experiment
/// output is bit-reproducible across runs and machines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimNanos(pub u64);

impl SimNanos {
    pub const ZERO: SimNanos = SimNanos(0);

    pub fn from_micros(us: u64) -> Self {
        SimNanos(us * 1_000)
    }

    pub fn from_secs_f64(secs: f64) -> Self {
        SimNanos((secs.max(0.0) * 1e9).round() as u64)
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    pub fn max(self, other: SimNanos) -> SimNanos {
        SimNanos(self.0.max(other.0))
    }

    pub fn saturating_sub(self, other: SimNanos) -> SimNanos {
        SimNanos(self.0.saturating_sub(other.0))
    }
}

impl Add for SimNanos {
    type Output = SimNanos;
    fn add(self, rhs: SimNanos) -> SimNanos {
        SimNanos(self.0 + rhs.0)
    }
}

impl AddAssign for SimNanos {
    fn add_assign(&mut self, rhs: SimNanos) {
        self.0 += rhs.0;
    }
}

impl Sub for SimNanos {
    type Output = SimNanos;
    fn sub(self, rhs: SimNanos) -> SimNanos {
        SimNanos(self.0 - rhs.0)
    }
}

impl Sum for SimNanos {
    fn sum<I: Iterator<Item = SimNanos>>(iter: I) -> SimNanos {
        SimNanos(iter.map(|t| t.0).sum())
    }
}

impl fmt::Display for SimNanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = SimNanos(500) + SimNanos(700);
        assert_eq!(a, SimNanos(1200));
        assert_eq!(a - SimNanos(200), SimNanos(1000));
        assert_eq!(a.max(SimNanos(5000)), SimNanos(5000));
    }

    #[test]
    fn conversions() {
        assert_eq!(SimNanos::from_micros(3), SimNanos(3000));
        assert_eq!(SimNanos::from_secs_f64(1.5), SimNanos(1_500_000_000));
        assert!((SimNanos(2_000_000).as_millis_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sum_iterator() {
        let total: SimNanos = [SimNanos(1), SimNanos(2), SimNanos(3)].into_iter().sum();
        assert_eq!(total, SimNanos(6));
    }

    #[test]
    fn display_units() {
        assert_eq!(SimNanos(12).to_string(), "12ns");
        assert_eq!(SimNanos(1_500).to_string(), "1.500us");
        assert_eq!(SimNanos(2_500_000).to_string(), "2.500ms");
        assert_eq!(SimNanos(3_000_000_000).to_string(), "3.000s");
    }

    #[test]
    fn saturating_sub_floors_at_zero() {
        assert_eq!(SimNanos(5).saturating_sub(SimNanos(9)), SimNanos::ZERO);
    }
}
