//! Host↔device transfer accounting and pipelining.

use crate::spec::DeviceSpec;
use crate::time::SimNanos;

/// Running totals of host↔device traffic. The paper reports exactly these
/// quantities in Fig 10 (c)/(d): bytes moved and time spent moving them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransferLedger {
    pub h2d_bytes: u64,
    pub d2h_bytes: u64,
    pub h2d_time: SimNanos,
    pub d2h_time: SimNanos,
    pub h2d_transfers: u64,
    pub d2h_transfers: u64,
    /// PCIe transactions avoided by staging several logical segments into a
    /// single coalesced H2D copy (each saved transaction would have paid the
    /// fixed link latency on its own).
    pub h2d_coalesced_saved: u64,
}

impl TransferLedger {
    pub fn total_bytes(&self) -> u64 {
        self.h2d_bytes + self.d2h_bytes
    }

    pub fn total_time(&self) -> SimNanos {
        self.h2d_time + self.d2h_time
    }

    pub fn add(&mut self, other: &TransferLedger) {
        self.h2d_bytes += other.h2d_bytes;
        self.d2h_bytes += other.d2h_bytes;
        self.h2d_time += other.h2d_time;
        self.d2h_time += other.d2h_time;
        self.h2d_transfers += other.h2d_transfers;
        self.d2h_transfers += other.d2h_transfers;
        self.h2d_coalesced_saved += other.h2d_coalesced_saved;
    }
}

/// Duration of a single transfer of `bytes` on `spec`'s link.
pub fn transfer_time(spec: &DeviceSpec, bytes: u64) -> SimNanos {
    let wire = bytes as f64 / spec.pcie_bandwidth_bytes_per_sec;
    SimNanos(spec.pcie_latency_ns) + SimNanos::from_secs_f64(wire)
}

/// Makespan of a pipelined copy/compute schedule (paper §V-A: the GPU starts
/// cleaning the first batch of message lists while later batches are still
/// in flight).
///
/// `chunks` is a sequence of `(copy_time, compute_time)` pairs. Copies are
/// serialised on the link in order; chunk *i*'s compute starts once both its
/// copy has landed and chunk *i−1*'s compute has finished. Returns when the
/// last compute finishes.
pub fn pipelined_makespan(chunks: &[(SimNanos, SimNanos)]) -> SimNanos {
    let mut copy_done = SimNanos::ZERO;
    let mut compute_done = SimNanos::ZERO;
    for &(copy, compute) in chunks {
        copy_done += copy;
        compute_done = copy_done.max(compute_done) + compute;
    }
    compute_done
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_has_latency_floor() {
        let spec = DeviceSpec::test_tiny();
        let t = transfer_time(&spec, 0);
        assert_eq!(t, SimNanos(spec.pcie_latency_ns));
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let spec = DeviceSpec::test_tiny(); // 1 GB/s
        let t = transfer_time(&spec, 1_000_000_000);
        assert!((t.as_secs_f64() - 1.000001).abs() < 1e-4, "{t}");
    }

    #[test]
    fn ledger_accumulates() {
        let mut a = TransferLedger {
            h2d_bytes: 10,
            h2d_time: SimNanos(5),
            h2d_transfers: 1,
            ..Default::default()
        };
        a.add(&TransferLedger {
            h2d_bytes: 3,
            d2h_bytes: 7,
            d2h_time: SimNanos(2),
            d2h_transfers: 1,
            ..Default::default()
        });
        assert_eq!(a.total_bytes(), 20);
        assert_eq!(a.total_time(), SimNanos(7));
        assert_eq!(a.h2d_transfers, 1);
    }

    #[test]
    fn pipeline_overlaps_copy_and_compute() {
        // Three chunks: copy 10, compute 10 each.
        let chunks = [(SimNanos(10), SimNanos(10)); 3];
        // Serial would be 60; pipelined: copies at 10,20,30, computes at
        // 20,30,40 → makespan 40.
        assert_eq!(pipelined_makespan(&chunks), SimNanos(40));
    }

    #[test]
    fn pipeline_copy_bound() {
        // Copies dominate: compute hides entirely behind the next copy.
        let chunks = [(SimNanos(100), SimNanos(1)); 4];
        assert_eq!(pipelined_makespan(&chunks), SimNanos(401));
    }

    #[test]
    fn pipeline_compute_bound() {
        let chunks = [(SimNanos(1), SimNanos(100)); 4];
        assert_eq!(pipelined_makespan(&chunks), SimNanos(401));
    }

    #[test]
    fn pipeline_empty() {
        assert_eq!(pipelined_makespan(&[]), SimNanos::ZERO);
    }

    #[test]
    fn pipeline_beats_serial() {
        let chunks = [
            (SimNanos(30), SimNanos(20)),
            (SimNanos(10), SimNanos(40)),
            (SimNanos(25), SimNanos(15)),
        ];
        let serial: SimNanos = chunks.iter().map(|&(c, k)| c + k).sum();
        assert!(pipelined_makespan(&chunks) < serial);
    }
}
