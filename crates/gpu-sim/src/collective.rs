//! Device-wide collective algorithms built on the lane primitives:
//! bitonic sort/top-k and tree reductions.
//!
//! The paper's `GPU_First_k` uses "a parallel sorting algorithm that runs
//! in O(log ρk) time" (§VI-B2). This module implements the standard
//! bitonic network over simulated lanes, so the selection actually executes
//! as a data-parallel algorithm with its comparisons charged to the cost
//! model, rather than being approximated host-side.

use crate::device::KernelCtx;

/// Sort `keys` ascending with a bitonic network executed as data-parallel
/// compare-exchange stages. Returns the sorted vector.
///
/// The input is padded to the next power of two with `K::MAX`-like sentinel
/// values provided by `max_sentinel`. Each stage charges one ALU op per
/// element plus the exchange traffic.
pub fn bitonic_sort<K: Copy + Ord>(
    ctx: &mut KernelCtx,
    mut keys: Vec<K>,
    max_sentinel: K,
) -> Vec<K> {
    let n_real = keys.len();
    if n_real <= 1 {
        return keys;
    }
    let n = n_real.next_power_of_two();
    keys.resize(n, max_sentinel);

    // Classic bitonic network: log²(n) compare-exchange stages, each stage
    // touching every element once — exactly the parallel work a device
    // would issue (n/2 comparators per stage across the cores).
    let mut k = 2;
    while k <= n {
        let mut j = k / 2;
        while j > 0 {
            ctx.charge_alu_all(2); // compare + select per thread
            ctx.charge_read(8 * n as u64);
            ctx.charge_write(8 * n as u64);
            for i in 0..n {
                let l = i ^ j;
                if l > i {
                    let ascending = (i & k) == 0;
                    if (keys[i] > keys[l]) == ascending {
                        keys.swap(i, l);
                    }
                }
            }
            j /= 2;
        }
        k *= 2;
    }
    keys.truncate(n_real);
    keys
}

/// The k smallest keys, ascending — the paper's `GPU_First_k` selection.
pub fn top_k_smallest<K: Copy + Ord>(
    ctx: &mut KernelCtx,
    keys: Vec<K>,
    k: usize,
    max_sentinel: K,
) -> Vec<K> {
    let mut sorted = bitonic_sort(ctx, keys, max_sentinel);
    sorted.truncate(k);
    sorted
}

/// Stable stream-compaction split: `(keep, drop)` where `keep` holds the
/// elements matching `pred`, both in input order.
///
/// Executed as the classic scan-then-scatter compaction: a flag per element,
/// a log-depth prefix sum over the flags, and one scattered write — charged
/// per *element* (not per launch thread), since the frontier kernel calls
/// this on frontier-sized arrays from a launch sized for all candidate
/// vertices.
pub fn partition_by<T: Copy>(
    ctx: &mut KernelCtx,
    vals: &[T],
    pred: impl Fn(&T) -> bool,
) -> (Vec<T>, Vec<T>) {
    let n = vals.len() as u64;
    if n > 0 {
        let levels = (usize::BITS - (vals.len() - 1).leading_zeros()).max(1) as u64;
        // Flag evaluation + scan (one add per element per level) + scatter.
        ctx.charge_alu_one(n * (1 + levels));
        ctx.charge_read(8 * n);
        ctx.charge_write(8 * n);
    }
    let mut keep = Vec::new();
    let mut drop = Vec::new();
    for v in vals {
        if pred(v) {
            keep.push(*v);
        } else {
            drop.push(*v);
        }
    }
    (keep, drop)
}

/// Tree reduction: combine all values with `f` in log₂(n) data-parallel
/// steps (e.g. min/max/sum across a kernel's threads).
pub fn reduce<T: Copy>(ctx: &mut KernelCtx, mut vals: Vec<T>, f: impl Fn(T, T) -> T) -> Option<T> {
    if vals.is_empty() {
        return None;
    }
    while vals.len() > 1 {
        ctx.charge_alu_all(1);
        ctx.charge_read(8 * vals.len() as u64);
        // One tree level: combine adjacent pairs in parallel.
        vals = vals
            .chunks(2)
            .map(|pair| {
                if pair.len() == 2 {
                    f(pair[0], pair[1])
                } else {
                    pair[0]
                }
            })
            .collect();
    }
    Some(vals[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::spec::DeviceSpec;

    fn with_ctx<R>(f: impl FnOnce(&mut KernelCtx) -> R) -> (R, crate::ops::OpCounts) {
        let mut dev = Device::new(DeviceSpec::test_tiny());
        let (r, report) = dev.launch(64, f);
        (r, report.ops)
    }

    #[test]
    fn sorts_arbitrary_input() {
        let (out, ops) =
            with_ctx(|ctx| bitonic_sort(ctx, vec![5u64, 3, 9, 1, 1, 300, 42], u64::MAX));
        assert_eq!(out, vec![1, 1, 3, 5, 9, 42, 300]);
        assert!(ops.alu > 0, "sorting must be charged");
    }

    #[test]
    fn sorts_empty_and_singleton() {
        let (out, _) = with_ctx(|ctx| bitonic_sort(ctx, Vec::<u64>::new(), u64::MAX));
        assert!(out.is_empty());
        let (out, _) = with_ctx(|ctx| bitonic_sort(ctx, vec![7u64], u64::MAX));
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn sorts_non_power_of_two_lengths() {
        for n in [2usize, 3, 5, 17, 33, 100] {
            let input: Vec<u64> = (0..n as u64).map(|i| (i * 7919) % 101).collect();
            let mut expect = input.clone();
            expect.sort_unstable();
            let (out, _) = with_ctx(|ctx| bitonic_sort(ctx, input, u64::MAX));
            assert_eq!(out, expect, "n={n}");
        }
    }

    #[test]
    fn top_k_selects_smallest() {
        let (out, _) = with_ctx(|ctx| top_k_smallest(ctx, vec![9u64, 2, 7, 4, 4, 11], 3, u64::MAX));
        assert_eq!(out, vec![2, 4, 4]);
    }

    #[test]
    fn top_k_larger_than_input() {
        let (out, _) = with_ctx(|ctx| top_k_smallest(ctx, vec![3u64, 1], 10, u64::MAX));
        assert_eq!(out, vec![1, 3]);
    }

    #[test]
    fn partition_splits_stably_and_charges() {
        let (out, ops) = with_ctx(|ctx| partition_by(ctx, &[5u64, 2, 9, 3, 8, 1], |&v| v < 4));
        assert_eq!(out.0, vec![2, 3, 1]);
        assert_eq!(out.1, vec![5, 9, 8]);
        assert!(ops.alu > 0, "compaction must be charged");
        let (empty, ops) = with_ctx(|ctx| partition_by(ctx, &Vec::<u64>::new(), |_| true));
        assert!(empty.0.is_empty() && empty.1.is_empty());
        assert_eq!(ops.alu, 0, "empty input charges nothing");
    }

    #[test]
    fn reduce_min_and_sum() {
        let (min, _) = with_ctx(|ctx| reduce(ctx, vec![5u64, 2, 9, 3], |a, b| a.min(b)));
        assert_eq!(min, Some(2));
        let (sum, _) = with_ctx(|ctx| reduce(ctx, vec![1u64, 2, 3, 4, 5], |a, b| a + b));
        assert_eq!(sum, Some(15));
        let (none, _) = with_ctx(|ctx| reduce(ctx, Vec::<u64>::new(), |a, _| a));
        assert_eq!(none, None);
    }

    #[test]
    fn stage_count_is_log_squared() {
        // Cost grows ~n·log²n: doubling n should much less than quadruple
        // per-element cost.
        let cost = |n: usize| {
            let input: Vec<u64> = (0..n as u64).rev().collect();
            let (_, ops) = with_ctx(|ctx| bitonic_sort(ctx, input, u64::MAX));
            ops.alu
        };
        let (c64, c128) = (cost(64), cost(128));
        // stages(64)=21, stages(128)=28 → ratio 8/3 on the charged ALU.
        assert!(c128 > c64);
        assert!(c128 < c64 * 4);
    }
}
