//! Operation counting and the analytic cost model.

use crate::spec::DeviceSpec;
use crate::time::SimNanos;

/// Counts of simulated operations, accumulated per kernel launch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Scalar ALU / branch lane-operations.
    pub alu: u64,
    /// Warp `shuffle_xor` lane-operations (register exchange, cheap).
    pub shuffle: u64,
    /// `shuffle_xor` lane-operations that crossed a warp boundary and had to
    /// be staged through shared memory with a barrier (expensive — this is
    /// the paper's Fig 4b cliff at bundle sizes > 32).
    pub cross_warp_shuffle: u64,
    /// Block-wide `sync_threads` barriers.
    pub syncs: u64,
    /// Bytes read from global device memory.
    pub global_read_bytes: u64,
    /// Bytes written to global device memory.
    pub global_write_bytes: u64,
    /// Atomic read-modify-write operations on global memory.
    pub atomics: u64,
}

impl OpCounts {
    pub fn add(&mut self, other: &OpCounts) {
        self.alu += other.alu;
        self.shuffle += other.shuffle;
        self.cross_warp_shuffle += other.cross_warp_shuffle;
        self.syncs += other.syncs;
        self.global_read_bytes += other.global_read_bytes;
        self.global_write_bytes += other.global_write_bytes;
        self.atomics += other.atomics;
    }

    pub fn total_mem_bytes(&self) -> u64 {
        self.global_read_bytes + self.global_write_bytes
    }

    /// Field-wise `self − other`, clamped at zero: the residual left after
    /// carving attributed slices out of a metered total (the cross-shard
    /// scatter path charges this residual to the coordinating device).
    pub fn saturating_sub(&self, other: &OpCounts) -> OpCounts {
        OpCounts {
            alu: self.alu.saturating_sub(other.alu),
            shuffle: self.shuffle.saturating_sub(other.shuffle),
            cross_warp_shuffle: self
                .cross_warp_shuffle
                .saturating_sub(other.cross_warp_shuffle),
            syncs: self.syncs.saturating_sub(other.syncs),
            global_read_bytes: self
                .global_read_bytes
                .saturating_sub(other.global_read_bytes),
            global_write_bytes: self
                .global_write_bytes
                .saturating_sub(other.global_write_bytes),
            atomics: self.atomics.saturating_sub(other.atomics),
        }
    }

    /// Whether any field is nonzero.
    pub fn any(&self) -> bool {
        *self != OpCounts::default()
    }

    /// Every field scaled by `num / den` (saturating, `den = 0` → zero).
    /// Used to split a data-parallel cost across cooperating devices in
    /// proportion to the threads each one hosts.
    pub fn scaled(&self, num: u64, den: u64) -> OpCounts {
        if den == 0 {
            return OpCounts::default();
        }
        let part = |x: u64| -> u64 { (u128::from(x) * u128::from(num) / u128::from(den)) as u64 };
        OpCounts {
            alu: part(self.alu),
            shuffle: part(self.shuffle),
            cross_warp_shuffle: part(self.cross_warp_shuffle),
            syncs: part(self.syncs),
            global_read_bytes: part(self.global_read_bytes),
            global_write_bytes: part(self.global_write_bytes),
            atomics: part(self.atomics),
        }
    }
}

/// Cycle costs per operation class.
///
/// The absolute values are calibrated to typical Pascal-class figures; the
/// experiments only rely on the *relative* costs (shuffle ≪ shared-memory
/// staging ≪ global atomics, barriers costly when blocks span warps).
#[derive(Clone, Debug)]
pub struct CostModel {
    pub cycles_per_alu: f64,
    pub cycles_per_shuffle: f64,
    pub cycles_per_cross_warp_shuffle: f64,
    pub cycles_per_sync: f64,
    pub cycles_per_atomic: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            cycles_per_alu: 1.0,
            cycles_per_shuffle: 2.0,
            // Staging through shared memory + intra-block barrier.
            cycles_per_cross_warp_shuffle: 24.0,
            cycles_per_sync: 32.0,
            cycles_per_atomic: 40.0,
        }
    }
}

impl CostModel {
    /// Total lane-cycles implied by `ops`.
    pub fn cycles(&self, ops: &OpCounts) -> f64 {
        ops.alu as f64 * self.cycles_per_alu
            + ops.shuffle as f64 * self.cycles_per_shuffle
            + ops.cross_warp_shuffle as f64 * self.cycles_per_cross_warp_shuffle
            + ops.syncs as f64 * self.cycles_per_sync
            + ops.atomics as f64 * self.cycles_per_atomic
    }

    /// Simulated duration of a launch of `threads` threads performing `ops`
    /// in total, on `spec`. Compute and memory time overlap (max), plus the
    /// fixed launch overhead.
    pub fn launch_time(&self, spec: &DeviceSpec, threads: usize, ops: &OpCounts) -> SimNanos {
        // Threads are scheduled in whole warps; unused lanes still burn
        // issue slots.
        let warp = spec.warp_size as usize;
        let occupied_lanes = threads.div_ceil(warp) * warp;
        let parallel_lanes = occupied_lanes.min(spec.total_cores() as usize).max(1);
        let compute_secs = self.cycles(ops) / (parallel_lanes as f64 * spec.clock_hz);
        let mem_secs = ops.total_mem_bytes() as f64 / spec.mem_bandwidth_bytes_per_sec;
        SimNanos(spec.launch_overhead_ns) + SimNanos::from_secs_f64(compute_secs.max(mem_secs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation() {
        let mut a = OpCounts {
            alu: 10,
            shuffle: 2,
            ..Default::default()
        };
        a.add(&OpCounts {
            alu: 5,
            global_read_bytes: 64,
            ..Default::default()
        });
        assert_eq!(a.alu, 15);
        assert_eq!(a.total_mem_bytes(), 64);
    }

    #[test]
    fn cross_warp_shuffle_costs_more() {
        let m = CostModel::default();
        let warp_only = OpCounts {
            shuffle: 100,
            ..Default::default()
        };
        let cross = OpCounts {
            cross_warp_shuffle: 100,
            ..Default::default()
        };
        assert!(m.cycles(&cross) > 5.0 * m.cycles(&warp_only));
    }

    #[test]
    fn launch_time_includes_overhead() {
        let m = CostModel::default();
        let spec = DeviceSpec::test_tiny();
        let t = m.launch_time(&spec, 1, &OpCounts::default());
        assert_eq!(t, SimNanos(spec.launch_overhead_ns));
    }

    #[test]
    fn more_threads_same_total_work_is_faster() {
        let m = CostModel::default();
        let spec = DeviceSpec::quadro_p2000();
        let ops = OpCounts {
            alu: 10_000_000,
            ..Default::default()
        };
        let serial = m.launch_time(&spec, 1, &ops);
        let parallel = m.launch_time(&spec, 1024, &ops);
        assert!(parallel < serial);
    }

    #[test]
    fn parallelism_saturates_at_core_count() {
        let m = CostModel::default();
        let spec = DeviceSpec::quadro_p2000();
        let ops = OpCounts {
            alu: 10_000_000,
            ..Default::default()
        };
        let at_cores = m.launch_time(&spec, 1024, &ops);
        let beyond = m.launch_time(&spec, 100_000, &ops);
        assert_eq!(at_cores, beyond);
    }

    #[test]
    fn memory_bound_launch_charged_by_bandwidth() {
        let m = CostModel::default();
        let spec = DeviceSpec::test_tiny(); // 10 GB/s
        let ops = OpCounts {
            global_read_bytes: 10_000_000_000,
            ..Default::default()
        };
        let t = m.launch_time(&spec, 64, &ops);
        // ~1 second of memory traffic dominates.
        assert!((t.as_secs_f64() - 1.0).abs() < 0.01, "{t}");
    }
}
