//! The simulated device: kernels, transfers, memory, and the clock.

use crate::mem::{
    BufferId, BufferTable, BufferTag, DeviceMemory, OutOfDeviceMemory, ResidencyLedger,
};
use crate::ops::{CostModel, OpCounts};
use crate::spec::DeviceSpec;
use crate::time::SimNanos;
use crate::warp::WarpExecutor;
use crate::xfer::{transfer_time, TransferLedger};

/// Result of one kernel launch.
#[derive(Clone, Copy, Debug)]
pub struct LaunchReport {
    /// Simulated duration of the launch (overhead + max(compute, memory)).
    pub time: SimNanos,
    /// Threads launched.
    pub threads: usize,
    /// Operations executed across all threads.
    pub ops: OpCounts,
}

/// Execution context handed to a kernel body. All work performed by the
/// kernel must be charged here; the launch's simulated duration is derived
/// from these counters when the body returns.
pub struct KernelCtx {
    warp_size: usize,
    threads: usize,
    ops: OpCounts,
}

impl KernelCtx {
    /// A context not bound to any device, for *metering* a kernel body
    /// without charging a device's clock. Pair with [`Device::launch_ops`]
    /// to replay slices of the metered work on the devices that own them
    /// (the cross-shard scatter path).
    pub fn detached(warp_size: usize, threads: usize) -> Self {
        Self {
            warp_size: warp_size.max(1),
            threads: threads.max(1),
            ops: OpCounts::default(),
        }
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    pub fn warp_size(&self) -> usize {
        self.warp_size
    }

    /// Open a `width`-lane bundle executor (the paper's `2^η`-thread bundle).
    pub fn bundle(&mut self, width: usize) -> WarpExecutor<'_> {
        WarpExecutor::new(&mut self.ops, self.warp_size, width)
    }

    /// Charge `n` ALU ops executed by *every* thread of the launch.
    pub fn charge_alu_all(&mut self, n: u64) {
        self.ops.alu += n * self.threads as u64;
    }

    /// Charge `n` ALU ops executed by a single thread.
    pub fn charge_alu_one(&mut self, n: u64) {
        self.ops.alu += n;
    }

    /// Charge a global read of `bytes` performed by a single thread.
    pub fn charge_read(&mut self, bytes: u64) {
        self.ops.global_read_bytes += bytes;
    }

    /// Charge a global write of `bytes` performed by a single thread.
    pub fn charge_write(&mut self, bytes: u64) {
        self.ops.global_write_bytes += bytes;
    }

    /// Charge `n` global atomics.
    pub fn charge_atomics(&mut self, n: u64) {
        self.ops.atomics += n;
    }

    /// Block-wide barrier across all threads of the launch (Algorithm 5's
    /// `sync_threads`). Charged once per warp in flight.
    pub fn sync_threads(&mut self) {
        let warps = self.threads.div_ceil(self.warp_size) as u64;
        self.ops.syncs += warps;
    }

    /// Operations charged so far.
    pub fn ops(&self) -> &OpCounts {
        &self.ops
    }
}

/// A simulated GPU.
pub struct Device {
    spec: DeviceSpec,
    cost: CostModel,
    mem: DeviceMemory,
    buffers: BufferTable,
    ledger: TransferLedger,
    kernel_time: SimNanos,
    launches: u64,
}

impl Device {
    pub fn new(spec: DeviceSpec) -> Self {
        let mem = DeviceMemory::new(spec.global_mem_bytes);
        Self {
            spec,
            cost: CostModel::default(),
            mem,
            buffers: BufferTable::default(),
            ledger: TransferLedger::default(),
            kernel_time: SimNanos::ZERO,
            launches: 0,
        }
    }

    /// The paper's evaluation device.
    pub fn quadro_p2000() -> Self {
        Self::new(DeviceSpec::quadro_p2000())
    }

    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Reserve device memory for a resident structure.
    pub fn alloc(&mut self, bytes: u64) -> Result<(), OutOfDeviceMemory> {
        self.mem.alloc(bytes)
    }

    pub fn free(&mut self, bytes: u64) {
        self.mem.free(bytes)
    }

    pub fn memory(&self) -> &DeviceMemory {
        &self.mem
    }

    /// Allocate a handle-tracked device buffer (resident state that comes
    /// and goes, e.g. consolidated cell lists). Fails without reserving
    /// when the card is out of memory.
    pub fn alloc_buffer(&mut self, bytes: u64) -> Result<BufferId, OutOfDeviceMemory> {
        self.buffers.alloc(&mut self.mem, bytes)
    }

    /// [`Self::alloc_buffer`] with a subsystem tag, so instrumentation can
    /// split resident bytes (cell state vs topology).
    pub fn alloc_buffer_tagged(
        &mut self,
        bytes: u64,
        tag: BufferTag,
    ) -> Result<BufferId, OutOfDeviceMemory> {
        self.buffers.alloc_tagged(&mut self.mem, bytes, tag)
    }

    /// Bytes currently resident in handle-tracked buffers under `tag`.
    pub fn resident_bytes_tagged(&self, tag: BufferTag) -> u64 {
        self.buffers.bytes_of_tag(tag)
    }

    /// Free a handle-tracked buffer, returning the bytes released.
    pub fn free_buffer(&mut self, id: BufferId) -> u64 {
        self.buffers.free(&mut self.mem, id)
    }

    /// Resize a handle-tracked buffer in place. On out-of-memory the buffer
    /// ends up freed and the error is returned.
    pub fn resize_buffer(&mut self, id: BufferId, bytes: u64) -> Result<(), OutOfDeviceMemory> {
        self.buffers.resize(&mut self.mem, id, bytes)
    }

    /// Size of a live handle-tracked buffer.
    pub fn buffer_bytes(&self, id: BufferId) -> Option<u64> {
        self.buffers.bytes_of(id)
    }

    /// Occupancy ledger of the handle-tracked (resident) buffers.
    pub fn residency(&self) -> &ResidencyLedger {
        self.buffers.ledger()
    }

    /// Copy `bytes` host→device; returns the simulated duration.
    pub fn h2d(&mut self, bytes: u64) -> SimNanos {
        let t = transfer_time(&self.spec, bytes);
        self.ledger.h2d_bytes += bytes;
        self.ledger.h2d_time += t;
        self.ledger.h2d_transfers += 1;
        t
    }

    /// Copy `segments` logical host-side segments totalling `bytes` in one
    /// coalesced host→device transfer: the fixed PCIe latency is paid once
    /// for the whole stage rather than once per segment. Zero segments cost
    /// nothing. Returns the simulated duration.
    pub fn h2d_staged(&mut self, segments: usize, bytes: u64) -> SimNanos {
        if segments == 0 {
            return SimNanos::ZERO;
        }
        let t = self.h2d(bytes);
        self.ledger.h2d_coalesced_saved += segments as u64 - 1;
        t
    }

    /// Copy `bytes` device→host; returns the simulated duration.
    pub fn d2h(&mut self, bytes: u64) -> SimNanos {
        let t = transfer_time(&self.spec, bytes);
        self.ledger.d2h_bytes += bytes;
        self.ledger.d2h_time += t;
        self.ledger.d2h_transfers += 1;
        t
    }

    /// Copy `bytes` device→host over an already-open streaming channel: an
    /// earlier [`Self::d2h`] on the same logical stream paid the PCIe
    /// handshake, so only wire time is charged. Zero bytes cost nothing.
    pub fn d2h_streamed(&mut self, bytes: u64) -> SimNanos {
        if bytes == 0 {
            return SimNanos::ZERO;
        }
        let t = SimNanos::from_secs_f64(bytes as f64 / self.spec.pcie_bandwidth_bytes_per_sec);
        self.ledger.d2h_bytes += bytes;
        self.ledger.d2h_time += t;
        self.ledger.d2h_transfers += 1;
        t
    }

    /// Launch a kernel of `threads` threads. The body runs on the host and
    /// must charge its work to the [`KernelCtx`]; the returned report holds
    /// the simulated duration.
    pub fn launch<R>(
        &mut self,
        threads: usize,
        body: impl FnOnce(&mut KernelCtx) -> R,
    ) -> (R, LaunchReport) {
        let mut ctx = KernelCtx {
            warp_size: self.spec.warp_size as usize,
            threads: threads.max(1),
            ops: OpCounts::default(),
        };
        let result = body(&mut ctx);
        let time = self.cost.launch_time(&self.spec, ctx.threads, &ctx.ops);
        self.kernel_time += time;
        self.launches += 1;
        (
            result,
            LaunchReport {
                time,
                threads: ctx.threads,
                ops: ctx.ops,
            },
        )
    }

    /// Charge a pre-metered operation profile as one kernel launch of
    /// `threads` threads. This is the replay half of the scatter path: the
    /// body runs once against a [`KernelCtx::detached`] context while the
    /// caller tallies per-owner op slices, then each owner's slice is
    /// launched here on its own device — same total work, attributed to the
    /// devices that own the data it touched.
    pub fn launch_ops(&mut self, threads: usize, ops: OpCounts) -> LaunchReport {
        let threads = threads.max(1);
        let time = self.cost.launch_time(&self.spec, threads, &ops);
        self.kernel_time += time;
        self.launches += 1;
        LaunchReport { time, threads, ops }
    }

    /// Transfer ledger since the last [`Self::reset_counters`].
    pub fn ledger(&self) -> &TransferLedger {
        &self.ledger
    }

    /// Total simulated kernel time since the last reset.
    pub fn kernel_time(&self) -> SimNanos {
        self.kernel_time
    }

    pub fn launches(&self) -> u64 {
        self.launches
    }

    /// Clear the ledger and kernel-time accumulators (memory reservations
    /// are left alone — resident indexes stay resident).
    pub fn reset_counters(&mut self) {
        self.ledger = TransferLedger::default();
        self.kernel_time = SimNanos::ZERO;
        self.launches = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_reports_ops_and_time() {
        let mut dev = Device::new(DeviceSpec::test_tiny());
        let (sum, report) = dev.launch(64, |ctx| {
            ctx.charge_alu_all(10);
            (0..64u64).sum::<u64>()
        });
        assert_eq!(sum, 2016);
        assert_eq!(report.ops.alu, 640);
        assert!(report.time >= SimNanos(dev.spec().launch_overhead_ns));
        assert_eq!(dev.launches(), 1);
    }

    #[test]
    fn kernel_time_accumulates_and_resets() {
        let mut dev = Device::new(DeviceSpec::test_tiny());
        dev.launch(1, |_| ());
        dev.launch(1, |_| ());
        assert!(dev.kernel_time() > SimNanos::ZERO);
        dev.reset_counters();
        assert_eq!(dev.kernel_time(), SimNanos::ZERO);
        assert_eq!(dev.launches(), 0);
    }

    #[test]
    fn transfers_metered() {
        let mut dev = Device::new(DeviceSpec::test_tiny());
        dev.h2d(1000);
        dev.h2d(500);
        dev.d2h(200);
        let l = dev.ledger();
        assert_eq!(l.h2d_bytes, 1500);
        assert_eq!(l.d2h_bytes, 200);
        assert_eq!(l.h2d_transfers, 2);
        assert!(l.h2d_time > l.d2h_time);
    }

    #[test]
    fn staged_transfer_pays_latency_once() {
        let mut dev = Device::new(DeviceSpec::test_tiny());
        let latency = dev.spec().pcie_latency_ns;
        let staged = dev.h2d_staged(4, 4000);
        let mut per_seg = Device::new(DeviceSpec::test_tiny());
        let split: SimNanos = (0..4).map(|_| per_seg.h2d(1000)).sum();
        // Same bytes, but three fewer latency charges.
        assert_eq!(split - staged, SimNanos(3 * latency));
        let l = dev.ledger();
        assert_eq!(l.h2d_bytes, 4000);
        assert_eq!(l.h2d_transfers, 1);
        assert_eq!(l.h2d_coalesced_saved, 3);
    }

    #[test]
    fn staged_transfer_empty_is_free() {
        let mut dev = Device::new(DeviceSpec::test_tiny());
        assert_eq!(dev.h2d_staged(0, 0), SimNanos::ZERO);
        assert_eq!(dev.ledger().h2d_transfers, 0);
        assert_eq!(dev.ledger().h2d_coalesced_saved, 0);
    }

    #[test]
    fn staged_single_segment_matches_plain_h2d() {
        let mut a = Device::new(DeviceSpec::test_tiny());
        let mut b = Device::new(DeviceSpec::test_tiny());
        assert_eq!(a.h2d_staged(1, 777), b.h2d(777));
        assert_eq!(a.ledger().h2d_coalesced_saved, 0);
    }

    #[test]
    fn memory_capacity_enforced() {
        let mut dev = Device::new(DeviceSpec::test_tiny()); // 1 MB
        dev.alloc(1024 * 1024).unwrap();
        assert!(dev.alloc(1).is_err());
        dev.free(1024 * 1024);
        assert!(dev.alloc(1).is_ok());
    }

    #[test]
    fn buffers_share_capacity_with_raw_allocs() {
        let mut dev = Device::new(DeviceSpec::test_tiny()); // 1 MB
        dev.alloc(512 * 1024).unwrap();
        let b = dev.alloc_buffer(256 * 1024).unwrap();
        assert_eq!(dev.memory().in_use(), 768 * 1024);
        assert!(dev.alloc_buffer(512 * 1024).is_err());
        assert_eq!(dev.residency().live_buffers, 1);
        assert_eq!(dev.free_buffer(b), 256 * 1024);
        assert_eq!(dev.residency().resident_bytes, 0);
        assert_eq!(dev.memory().in_use(), 512 * 1024);
    }

    #[test]
    fn sync_threads_charges_per_warp() {
        let mut dev = Device::new(DeviceSpec::test_tiny());
        let (_, report) = dev.launch(96, |ctx| ctx.sync_threads());
        assert_eq!(report.ops.syncs, 3); // 96 threads = 3 warps
    }

    #[test]
    fn bundle_inside_kernel() {
        let mut dev = Device::new(DeviceSpec::test_tiny());
        let (out, report) = dev.launch(32, |ctx| {
            let mut w = ctx.bundle(4);
            let lanes = crate::warp::Lanes::from_fn(4, |i| i as u32);
            w.shuffle_xor(&lanes, 1).into_vec()
        });
        assert_eq!(out, vec![1, 0, 3, 2]);
        assert_eq!(report.ops.shuffle, 4);
    }

    #[test]
    fn metered_replay_matches_direct_launch() {
        // Metering with a detached ctx and replaying via launch_ops must
        // charge the same time as running the body through launch().
        let mut direct = Device::new(DeviceSpec::test_tiny());
        let (_, report) = direct.launch(64, |ctx| {
            ctx.charge_alu_all(10);
            ctx.charge_read(4096);
            ctx.sync_threads();
        });
        let mut meter = KernelCtx::detached(DeviceSpec::test_tiny().warp_size as usize, 64);
        meter.charge_alu_all(10);
        meter.charge_read(4096);
        meter.sync_threads();
        let mut replay = Device::new(DeviceSpec::test_tiny());
        let replayed = replay.launch_ops(64, *meter.ops());
        assert_eq!(replayed.time, report.time);
        assert_eq!(replayed.ops, report.ops);
        assert_eq!(replay.launches(), 1);
        assert_eq!(replay.kernel_time(), direct.kernel_time());
    }

    #[test]
    fn zero_thread_launch_clamped() {
        let mut dev = Device::new(DeviceSpec::test_tiny());
        let (_, report) = dev.launch(0, |_| ());
        assert_eq!(report.threads, 1);
    }
}
