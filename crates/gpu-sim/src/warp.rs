//! Lock-step warp execution with lane collectives.
//!
//! A *bundle* (the paper's term for a group of `2^η` threads, §IV-C1) is
//! modelled as a set of lanes whose registers advance together through
//! whole-bundle collective operations. This mirrors how the real kernel is
//! written: straight-line SIMT code where every lane executes the same
//! instruction, exchanging registers via the butterfly `shuffle_xor`.
//!
//! Cost semantics faithful to hardware:
//! * `shuffle_xor` with a lane mask smaller than the warp size is a cheap
//!   register exchange;
//! * a mask that crosses warp boundaries (bundle wider than a warp) must be
//!   staged through shared memory with a block barrier — much slower. This
//!   is exactly the effect the paper measures in Fig 4b, where bundles wider
//!   than the 32-lane warp stop paying off.

use crate::ops::OpCounts;

/// One register per lane of a bundle.
#[derive(Clone, Debug, PartialEq)]
pub struct Lanes<T> {
    vals: Vec<T>,
}

impl<T> Lanes<T> {
    pub fn from_vec(vals: Vec<T>) -> Self {
        Self { vals }
    }

    pub fn from_fn(width: usize, f: impl FnMut(usize) -> T) -> Self {
        Self {
            vals: (0..width).map(f).collect(),
        }
    }

    pub fn width(&self) -> usize {
        self.vals.len()
    }

    pub fn get(&self, lane: usize) -> &T {
        &self.vals[lane]
    }

    pub fn as_slice(&self) -> &[T] {
        &self.vals
    }

    pub fn into_vec(self) -> Vec<T> {
        self.vals
    }
}

/// Executes collectives over a bundle of `width` lanes, charging every
/// operation to an [`OpCounts`] accumulator.
pub struct WarpExecutor<'a> {
    warp_size: usize,
    width: usize,
    ops: &'a mut OpCounts,
}

impl<'a> WarpExecutor<'a> {
    /// # Panics
    /// Panics unless `width` is a power of two (bundles are `2^η` lanes).
    pub fn new(ops: &'a mut OpCounts, warp_size: usize, width: usize) -> Self {
        assert!(
            width.is_power_of_two(),
            "bundle width must be a power of two"
        );
        assert!(warp_size.is_power_of_two());
        Self {
            warp_size,
            width,
            ops,
        }
    }

    pub fn width(&self) -> usize {
        self.width
    }

    /// Whether this bundle spans more than one hardware warp.
    pub fn spans_warps(&self) -> bool {
        self.width > self.warp_size
    }

    /// Per-lane pure computation: one ALU op per lane (charge more work via
    /// [`Self::charge_alu`] when the closure does more than O(1)).
    pub fn map<T, U>(&mut self, lanes: &Lanes<T>, mut f: impl FnMut(usize, &T) -> U) -> Lanes<U> {
        assert_eq!(lanes.width(), self.width);
        self.ops.alu += self.width as u64;
        Lanes::from_fn(self.width, |i| f(i, &lanes.vals[i]))
    }

    /// Per-lane in-place mutation against external state.
    pub fn for_each(&mut self, mut f: impl FnMut(usize)) {
        self.ops.alu += self.width as u64;
        for i in 0..self.width {
            f(i);
        }
    }

    /// Butterfly exchange: lane `i` receives lane `i ^ mask`'s register.
    ///
    /// # Panics
    /// Panics unless `0 < mask < width` (CUDA's `__shfl_xor` lane-mask rule
    /// restricted to in-bundle exchanges).
    pub fn shuffle_xor<T: Copy>(&mut self, lanes: &Lanes<T>, mask: usize) -> Lanes<T> {
        assert_eq!(lanes.width(), self.width);
        assert!(mask > 0 && mask < self.width, "lane mask out of range");
        if mask >= self.warp_size {
            // Crosses warp boundaries: shared-memory staging + barrier.
            self.ops.cross_warp_shuffle += self.width as u64;
            self.ops.syncs += 1;
        } else {
            self.ops.shuffle += self.width as u64;
        }
        Lanes::from_fn(self.width, |i| lanes.vals[i ^ mask])
    }

    /// Ballot: bitmask (little-endian by lane) of lanes whose predicate holds.
    pub fn ballot<T>(&mut self, lanes: &Lanes<T>, mut pred: impl FnMut(&T) -> bool) -> u64 {
        assert!(
            self.width <= 64,
            "ballot modelled for bundles up to 64 lanes"
        );
        self.ops.alu += self.width as u64;
        let mut mask = 0u64;
        for (i, v) in lanes.vals.iter().enumerate() {
            if pred(v) {
                mask |= 1 << i;
            }
        }
        mask
    }

    /// Charge extra per-lane ALU work performed inside closures.
    pub fn charge_alu(&mut self, per_lane_ops: u64) {
        self.ops.alu += per_lane_ops * self.width as u64;
    }

    /// Charge a global-memory read performed by every lane.
    pub fn charge_global_read(&mut self, bytes_per_lane: u64) {
        self.ops.global_read_bytes += bytes_per_lane * self.width as u64;
    }

    /// Charge a global-memory write performed by every lane.
    pub fn charge_global_write(&mut self, bytes_per_lane: u64) {
        self.ops.global_write_bytes += bytes_per_lane * self.width as u64;
    }

    /// Charge an atomic RMW performed by a subset of lanes.
    pub fn charge_atomics(&mut self, count: u64) {
        self.ops.atomics += count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec(ops: &mut OpCounts, width: usize) -> WarpExecutor<'_> {
        WarpExecutor::new(ops, 32, width)
    }

    #[test]
    fn shuffle_xor_permutes() {
        let mut ops = OpCounts::default();
        let mut w = exec(&mut ops, 8);
        let lanes = Lanes::from_fn(8, |i| i as u32);
        let out = w.shuffle_xor(&lanes, 4);
        assert_eq!(out.as_slice(), &[4, 5, 6, 7, 0, 1, 2, 3]);
    }

    #[test]
    fn shuffle_xor_is_involution() {
        let mut ops = OpCounts::default();
        let mut w = exec(&mut ops, 16);
        let lanes = Lanes::from_fn(16, |i| i as u32 * 3);
        let twice = {
            let once = w.shuffle_xor(&lanes, 5);
            w.shuffle_xor(&once, 5)
        };
        assert_eq!(twice, lanes);
    }

    #[test]
    fn paper_example_exchange() {
        // Paper §IV-C2: with 4 threads, shuffle_xor(2) exchanges lanes
        // 0↔2 and 1↔3.
        let mut ops = OpCounts::default();
        let mut w = exec(&mut ops, 4);
        let lanes = Lanes::from_vec(vec!['a', 'b', 'c', 'd']);
        let out = w.shuffle_xor(&lanes, 2);
        assert_eq!(out.as_slice(), &['c', 'd', 'a', 'b']);
    }

    #[test]
    fn within_warp_shuffle_is_cheap() {
        let mut ops = OpCounts::default();
        {
            let mut w = exec(&mut ops, 32);
            let lanes = Lanes::from_fn(32, |i| i);
            w.shuffle_xor(&lanes, 16);
        }
        assert_eq!(ops.shuffle, 32);
        assert_eq!(ops.cross_warp_shuffle, 0);
        assert_eq!(ops.syncs, 0);
    }

    #[test]
    fn cross_warp_shuffle_charges_sync() {
        let mut ops = OpCounts::default();
        {
            let mut w = exec(&mut ops, 64);
            let lanes = Lanes::from_fn(64, |i| i);
            w.shuffle_xor(&lanes, 32); // crosses the 32-lane warp boundary
        }
        assert_eq!(ops.cross_warp_shuffle, 64);
        assert_eq!(ops.syncs, 1);
        assert_eq!(ops.shuffle, 0);
    }

    #[test]
    #[should_panic(expected = "lane mask out of range")]
    fn mask_must_be_in_bundle() {
        let mut ops = OpCounts::default();
        let mut w = exec(&mut ops, 8);
        let lanes = Lanes::from_fn(8, |i| i);
        w.shuffle_xor(&lanes, 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn width_must_be_power_of_two() {
        let mut ops = OpCounts::default();
        WarpExecutor::new(&mut ops, 32, 12);
    }

    #[test]
    fn ballot_collects_predicate() {
        let mut ops = OpCounts::default();
        let mut w = exec(&mut ops, 8);
        let lanes = Lanes::from_fn(8, |i| i as u32);
        let mask = w.ballot(&lanes, |&v| v % 2 == 0);
        assert_eq!(mask, 0b0101_0101);
    }

    #[test]
    fn map_charges_alu() {
        let mut ops = OpCounts::default();
        {
            let mut w = exec(&mut ops, 16);
            let lanes = Lanes::from_fn(16, |i| i as u64);
            let doubled = w.map(&lanes, |_, &v| v * 2);
            assert_eq!(*doubled.get(3), 6);
        }
        assert_eq!(ops.alu, 16);
    }

    #[test]
    fn memory_charges_scale_with_width() {
        let mut ops = OpCounts::default();
        {
            let mut w = exec(&mut ops, 32);
            w.charge_global_read(24);
            w.charge_global_write(8);
        }
        assert_eq!(ops.global_read_bytes, 24 * 32);
        assert_eq!(ops.global_write_bytes, 8 * 32);
    }
}
