//! Property-based tests of the SIMT simulator.

use gpu_sim::ops::{CostModel, OpCounts};
use gpu_sim::xfer::pipelined_makespan;
use gpu_sim::{Device, DeviceSpec, Lanes, SimNanos, WarpExecutor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The bitonic network sorts exactly like the standard library.
    #[test]
    fn bitonic_sort_matches_std(mut input in prop::collection::vec(0u64..1000, 0..120)) {
        let mut dev = Device::new(DeviceSpec::test_tiny());
        let (out, _) = dev.launch(input.len().max(1), |ctx| {
            gpu_sim::bitonic_sort(ctx, input.clone(), u64::MAX)
        });
        input.sort_unstable();
        prop_assert_eq!(out, input);
    }

    /// Tree reduction agrees with a sequential fold for associative +
    /// commutative operators.
    #[test]
    fn reduce_matches_fold(input in prop::collection::vec(0u64..10_000, 0..100)) {
        let mut dev = Device::new(DeviceSpec::test_tiny());
        let (min, _) = dev.launch(input.len().max(1), |ctx| {
            gpu_sim::reduce(ctx, input.clone(), |a, b| a.min(b))
        });
        prop_assert_eq!(min, input.iter().copied().min());
        let (sum, _) = dev.launch(input.len().max(1), |ctx| {
            gpu_sim::reduce(ctx, input.clone(), |a, b| a + b)
        });
        prop_assert_eq!(sum, if input.is_empty() { None } else { Some(input.iter().sum::<u64>()) });
    }

    /// shuffle_xor is an involution and a permutation for every valid mask.
    #[test]
    fn shuffle_xor_permutes(eta in 1u32..7, mask in 1usize..64, seed in 0u64..1000) {
        let width = 1usize << eta;
        let mask = mask % width;
        prop_assume!(mask > 0);
        let mut ops = OpCounts::default();
        let mut w = WarpExecutor::new(&mut ops, 32, width);
        let lanes = Lanes::from_fn(width, |i| (i as u64).wrapping_mul(seed + 1));
        let once = w.shuffle_xor(&lanes, mask);
        // Permutation: same multiset of values.
        let mut a: Vec<u64> = lanes.as_slice().to_vec();
        let mut b: Vec<u64> = once.as_slice().to_vec();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        // Involution.
        let twice = w.shuffle_xor(&once, mask);
        prop_assert_eq!(twice.as_slice(), lanes.as_slice());
    }

    /// Pipelined makespan lies between the two trivial bounds: it is at
    /// least max(total copy, total compute) and at most their sum.
    #[test]
    fn pipeline_bounds(chunks in prop::collection::vec((0u64..10_000, 0u64..10_000), 0..20)) {
        let chunks: Vec<(SimNanos, SimNanos)> = chunks
            .into_iter()
            .map(|(c, k)| (SimNanos(c), SimNanos(k)))
            .collect();
        let total_copy: u64 = chunks.iter().map(|&(c, _)| c.0).sum();
        let total_compute: u64 = chunks.iter().map(|&(_, k)| k.0).sum();
        let makespan = pipelined_makespan(&chunks).0;
        prop_assert!(makespan >= total_copy.max(total_compute));
        prop_assert!(makespan <= total_copy + total_compute);
    }

    /// Launch time is monotone in every op class.
    #[test]
    fn launch_time_monotone(alu in 0u64..1_000_000, extra in 1u64..1_000_000, threads in 1usize..4096) {
        let m = CostModel::default();
        let spec = DeviceSpec::quadro_p2000();
        let base = OpCounts { alu, ..Default::default() };
        let more = OpCounts { alu: alu + extra, ..Default::default() };
        prop_assert!(m.launch_time(&spec, threads, &base) <= m.launch_time(&spec, threads, &more));
    }

    /// Device memory accounting never goes negative or exceeds capacity.
    #[test]
    fn memory_invariants(allocs in prop::collection::vec(1u64..100_000, 1..50)) {
        let mut dev = Device::new(DeviceSpec::test_tiny());
        let cap = dev.memory().capacity();
        let mut live: Vec<u64> = Vec::new();
        for a in allocs {
            if dev.alloc(a).is_ok() {
                live.push(a);
            }
            prop_assert!(dev.memory().in_use() <= cap);
            // Free every other successful allocation as we go.
            if live.len().is_multiple_of(2) {
                if let Some(b) = live.pop() {
                    dev.free(b);
                }
            }
        }
        prop_assert_eq!(dev.memory().in_use(), live.iter().sum::<u64>());
    }

    /// Transfer accounting: ledger totals equal the sum of the parts.
    #[test]
    fn ledger_sums(parts in prop::collection::vec(0u64..1_000_000, 0..30)) {
        let mut dev = Device::new(DeviceSpec::test_tiny());
        let mut h2d = 0u64;
        for (i, p) in parts.iter().enumerate() {
            if i % 2 == 0 {
                dev.h2d(*p);
                h2d += p;
            } else {
                dev.d2h(*p);
            }
        }
        prop_assert_eq!(dev.ledger().h2d_bytes, h2d);
        prop_assert_eq!(dev.ledger().total_bytes(), parts.iter().sum::<u64>());
    }
}
