//! Quickstart: build a G-Grid server, feed it object updates, ask for kNN.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ggrid::prelude::*;
use roadnet::gen::{self, GridCityParams};

fn main() {
    // A small synthetic road network (a 24×24 city).
    let graph = gen::grid_city(&GridCityParams {
        rows: 24,
        cols: 24,
        seed: 7,
        ..Default::default()
    });
    println!(
        "road network: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // The G-Grid server with the paper's default tuning (δᶜ=3, δᵛ=2,
    // δᵇ=128, warp-wide bundles, ρ=1.8) and a simulated Quadro P2000.
    let mut server = GGridServer::new(graph.clone(), GGridConfig::default());
    println!(
        "graph grid: {} cells ({}x{}), ψ = {}",
        server.grid().num_cells(),
        server.grid().side(),
        server.grid().side(),
        server.grid().psi()
    );

    // Ten cars report their positions. Updates are O(1): they are cached in
    // per-cell message lists, not applied to the index.
    for car in 0..10u64 {
        let edge = roadnet::EdgeId((car * 37 % graph.num_edges() as u64) as u32);
        let position = EdgePosition::at_source(edge);
        server.handle_update(ObjectId(car), position, Timestamp(1_000 + car));
    }
    println!(
        "cached {} messages across the grid (no index update performed)",
        server.cached_messages()
    );

    // A user at edge 100 asks for the 3 nearest cars. The query cleans the
    // touched cells on the (simulated) GPU and refines on the CPU.
    let user = EdgePosition::at_source(roadnet::EdgeId(100));
    let answer = server.knn(user, 3, Timestamp(2_000));
    println!("3 nearest cars:");
    for (car, dist) in &answer {
        println!("  {car:?} at network distance {dist}");
    }

    let b = server.last_breakdown();
    println!(
        "query cost: cleaning {} + candidates {} on the GPU, {} cells cleaned, \
         {} messages deduplicated, {} unresolved vertices refined on the CPU",
        b.cleaning, b.candidate, b.cells_cleaned, b.messages_cleaned, b.unresolved
    );
}
