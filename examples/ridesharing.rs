//! Ride-sharing dispatch: the paper's motivating scenario (Fig 1).
//!
//! A fleet of cars moves on a city network and reports locations once per
//! second; riders repeatedly ask for their 3 nearest cars. Shows the lazy
//! index at work: updates are cheap appends, queries pay only for the
//! region they touch.
//!
//! ```text
//! cargo run --release --example ridesharing
//! ```

use std::sync::Arc;

use ggrid::prelude::*;
use roadnet::gen::{self, Dataset};
use workload::moto::{Moto, MotoConfig};
use workload::queries::QueryStream;

fn main() {
    // An NY-shaped network at 1/1000 scale.
    let graph = Arc::new(gen::dataset(Dataset::NY, 1000, 42));
    println!(
        "city: {} vertices, {} edges (NY-shaped)",
        graph.num_vertices(),
        graph.num_edges()
    );

    let mut server = GGridServer::new((*graph).clone(), GGridConfig::default());

    // 500 cars reporting once per second.
    let mut fleet = Moto::new(
        graph.clone(),
        &MotoConfig {
            num_objects: 500,
            update_period_ms: 1_000,
            seed: 1,
            ..Default::default()
        },
    );

    // A rider request every 2 seconds, k = 3 nearest cars.
    let mut riders = QueryStream::new(3, 2_000, Timestamp(1_000), 9);

    let mut total_messages = 0usize;
    for minute_tick in 0..10 {
        let (t, rider_pos, k) = riders.draw(&graph);
        let batch = fleet.advance_to(t);
        total_messages += batch.len();
        for m in &batch {
            server.handle_update(m.object, m.position, m.time);
        }
        let cars = server.knn(rider_pos, k, t);
        let b = server.last_breakdown();
        println!(
            "[t={:>5}ms] rider at {:?} → cars {:?} | cleaned {} msgs in {} cells, GPU {}",
            t.0,
            rider_pos.edge,
            cars.iter()
                .map(|(c, d)| format!("{c:?}@{d}"))
                .collect::<Vec<_>>(),
            b.messages_cleaned,
            b.cells_cleaned,
            b.gpu_total(),
        );
        let _ = minute_tick;
    }

    let c = server.counters();
    println!(
        "\nserved {} dispatch requests over {} location updates \
         ({} tombstones for cell moves); cached backlog now {} messages",
        c.queries,
        total_messages,
        c.tombstones_written,
        server.cached_messages()
    );
    println!(
        "device ledger: {} H2D / {} D2H bytes in {} + {} transfers",
        server.device().ledger().h2d_bytes,
        server.device().ledger().d2h_bytes,
        server.device().ledger().h2d_transfers,
        server.device().ledger().d2h_transfers
    );
}
