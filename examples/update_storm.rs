//! Update storm: the lazy-update headline in isolation.
//!
//! Drives G-Grid and the eager V-Tree through increasingly update-heavy
//! workloads (the paper's Fig 9 axis) and prints how each one's amortised
//! time reacts. G-Grid should barely move; V-Tree should degrade steeply.
//!
//! ```text
//! cargo run --release --example update_storm
//! ```

use std::sync::Arc;

use baselines::VTree;
use ggrid::{GGridConfig, GGridServer};
use roadnet::gen::{self, Dataset};
use workload::moto::MotoConfig;
use workload::scenario::{run_scenario, ScenarioConfig};

fn main() {
    let graph = Arc::new(gen::dataset(Dataset::NY, 1000, 11));
    println!(
        "network: NY-shaped, {} vertices; 1000 objects; k = 16\n",
        graph.num_vertices()
    );
    println!(
        "{:>8} {:>16} {:>16} {:>10}",
        "f (1/s)", "G-Grid t/q", "V-Tree t/q", "ratio"
    );

    for f in [1u64, 2, 4, 8, 16] {
        let period = 1000 / f;
        let scenario = ScenarioConfig {
            moto: MotoConfig {
                num_objects: 1_000,
                update_period_ms: period,
                seed: 2,
                ..Default::default()
            },
            k: 16,
            query_interval_ms: 1_000,
            num_queries: 6,
            warmup_ms: period + 100,
            query_seed: 31,
            buffered_ingest: false,
        };
        let t_delta = (4 * period).max(4_000);

        let mut lazy = GGridServer::new(
            (*graph).clone(),
            GGridConfig {
                t_delta_ms: t_delta,
                ..Default::default()
            },
        );
        let lazy_report = run_scenario(&graph, &mut lazy, &scenario, t_delta, false);

        let mut eager = VTree::new((*graph).clone(), 64, t_delta);
        let eager_report = run_scenario(&graph, &mut eager, &scenario, t_delta, false);

        let l = lazy_report.amortized_ns_per_query();
        let e = eager_report.amortized_ns_per_query();
        println!(
            "{:>8} {:>14.1}us {:>14.1}us {:>9.1}x",
            f,
            l as f64 / 1e3,
            e as f64 / 1e3,
            e as f64 / l.max(1) as f64
        );
    }
    println!("\n(the lazy index amortises update cost into queried regions only)");
}
