//! City-scale comparison: run all four indexes side by side on one
//! workload and print the paper's amortised metric for each.
//!
//! ```text
//! cargo run --release --example city_scale
//! ```

use std::sync::Arc;

use ggrid_bench::runner::{run_all_indexes, IndexKind, IndexParams};
use roadnet::gen::{self, Dataset};
use workload::moto::MotoConfig;
use workload::scenario::ScenarioConfig;

fn main() {
    let graph = Arc::new(gen::dataset(Dataset::COL, 1000, 3));
    println!(
        "network: COL-shaped, {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    let scenario = ScenarioConfig {
        moto: MotoConfig {
            num_objects: 2_000,
            update_period_ms: 1_000, // f = 1 update/s, the paper's default
            seed: 5,
            ..Default::default()
        },
        k: 16,
        query_interval_ms: 1_000,
        num_queries: 8,
        warmup_ms: 1_100,
        query_seed: 77,
        buffered_ingest: false,
    };
    println!(
        "workload: {} objects @ 1 Hz, {} kNN queries (k = {})\n",
        scenario.moto.num_objects, scenario.num_queries, scenario.k
    );

    let outcomes = run_all_indexes(&graph, &IndexParams::default(), &scenario, &IndexKind::ALL);
    println!(
        "{:<12} {:>14} {:>14} {:>12}",
        "index", "time/query", "index size", "answers"
    );
    for o in &outcomes {
        match &o.report {
            Some(r) => println!(
                "{:<12} {:>14} {:>13}B {:>12}",
                o.kind.name(),
                format!("{:.2}us", o.serial_ns_per_query().unwrap() as f64 / 1e3),
                o.index_size.total(),
                format!("{} queries", r.answers.len()),
            ),
            None => println!("{:<12} {:>14}", o.kind.name(), "did not fit on device"),
        }
    }

    // Sanity: every index must return the same distances.
    let dists: Vec<Vec<Vec<u64>>> = outcomes
        .iter()
        .filter_map(|o| o.report.as_ref())
        .map(|r| {
            r.answers
                .iter()
                .map(|a| a.iter().map(|&(_, d)| d).collect())
                .collect()
        })
        .collect();
    let agree = dists.windows(2).all(|w| w[0] == w[1]);
    println!("\nall indexes agree on every answer: {agree}");
    assert!(agree, "cross-index disagreement — this is a bug");
}
