//! Checks of the paper's cost analysis (§VI) against measured counters.

use ggrid::message::{ObjectId, Timestamp};
use ggrid::{GGridConfig, GGridServer};
use roadnet::gen;
use roadnet::EdgePosition;

/// §VI-A: the graph grid stores each vertex and edge once — O(|V| + |E|)
/// with small constants, far from quadratic.
#[test]
fn grid_space_linear_in_graph() {
    let small = gen::grid_city(&gen::GridCityParams {
        rows: 10,
        cols: 10,
        seed: 1,
        ..Default::default()
    });
    let large = gen::grid_city(&gen::GridCityParams {
        rows: 20,
        cols: 20,
        seed: 1,
        ..Default::default()
    });
    let bytes = |g: &roadnet::Graph| {
        GGridServer::new(g.clone(), GGridConfig::default())
            .grid()
            .grid_bytes() as f64
    };
    let (bs, bl) = (bytes(&small), bytes(&large));
    let vertex_ratio = large.num_vertices() as f64 / small.num_vertices() as f64; // 4x
    let growth = bl / bs;
    assert!(
        growth < vertex_ratio * 2.0,
        "grid bytes grew {growth:.1}x for a {vertex_ratio:.1}x graph — not linear"
    );
}

/// §VI-A: message-list space is O(f_Δ · |𝒪|) — proportional to the number
/// of updates retained, independent of graph size.
#[test]
fn message_list_space_proportional_to_updates() {
    let g = gen::toy(3);
    let server = GGridServer::new(g.clone(), GGridConfig::default());
    let per_round = 50u64;
    let mut last = 0;
    for round in 1..=4u64 {
        for o in 0..per_round {
            let e = roadnet::EdgeId(((o * 7) % g.num_edges() as u64) as u32);
            server.handle_update(
                ObjectId(o),
                EdgePosition::at_source(e),
                Timestamp(round * 10),
            );
        }
        let cached = server.cached_messages();
        assert!(cached > last, "cache must grow with uncleaned updates");
        last = cached;
    }
    assert!(
        last as u64 >= 4 * per_round,
        "all updates retained until cleaned"
    );
}

/// §VI-B1: the number of messages shipped to the GPU for one query is
/// bounded by the retained updates of the objects in the candidate cells —
/// far less than the global backlog when queries are local.
#[test]
fn cleaning_transfer_bounded_by_local_backlog() {
    let g = gen::grid_city(&gen::GridCityParams {
        rows: 16,
        cols: 16,
        seed: 8,
        ..Default::default()
    });
    let mut server = GGridServer::new(g.clone(), GGridConfig::default());
    // Spread a large global backlog.
    let rounds = 10u64;
    for round in 0..rounds {
        for o in 0..200u64 {
            let e = roadnet::EdgeId(((o * 13) % g.num_edges() as u64) as u32);
            server.handle_update(
                ObjectId(o),
                EdgePosition::at_source(e),
                Timestamp(100 + round),
            );
        }
    }
    let backlog = server.cached_messages();
    server.knn(
        EdgePosition::at_source(roadnet::EdgeId(5)),
        4,
        Timestamp(200),
    );
    let shipped = server.last_breakdown().messages_cleaned;
    assert!(
        shipped < backlog / 2,
        "query shipped {shipped} of {backlog} cached messages — not local"
    );
}

/// §VI-B1: with everything else fixed, a larger k cleans at least as many
/// cells (the candidate target ρ·k grows).
#[test]
fn cells_cleaned_monotone_in_k() {
    let g = gen::grid_city(&gen::GridCityParams {
        rows: 16,
        cols: 16,
        seed: 4,
        ..Default::default()
    });
    let cleaned_for = |k: usize| {
        let mut server = GGridServer::new(g.clone(), GGridConfig::default());
        for o in 0..300u64 {
            let e = roadnet::EdgeId(((o * 29) % g.num_edges() as u64) as u32);
            server.handle_update(ObjectId(o), EdgePosition::at_source(e), Timestamp(100));
        }
        server.knn(
            EdgePosition::at_source(roadnet::EdgeId(9)),
            k,
            Timestamp(150),
        );
        server.last_breakdown().cells_cleaned
    };
    let small = cleaned_for(2);
    let large = cleaned_for(64);
    assert!(large >= small, "k=64 cleaned {large} < k=2 cleaned {small}");
}

/// Theorem 1 in the large: across a busy cleaning pass, the kernel's
/// observed duplicate count stays within μ(η).
#[test]
fn duplicates_stay_within_mu_during_real_cleaning() {
    let g = gen::toy(17);
    let cfg = GGridConfig {
        eta: 4,
        bucket_capacity: 4,
        ..Default::default()
    };
    let mut server = GGridServer::new(g.clone(), cfg);
    // One hot object spamming updates into the same cell (adversarial for
    // the shuffle), plus background traffic.
    for t in 0..200u64 {
        server.handle_update(
            ObjectId(1),
            EdgePosition::at_source(roadnet::EdgeId(0)),
            Timestamp(100 + t),
        );
        let e = roadnet::EdgeId((t % g.num_edges() as u64) as u32);
        server.handle_update(
            ObjectId(2 + t % 5),
            EdgePosition::at_source(e),
            Timestamp(100 + t),
        );
    }
    let answer = server.knn(
        EdgePosition::at_source(roadnet::EdgeId(0)),
        3,
        Timestamp(400),
    );
    assert!(!answer.is_empty());
    // μ(4) = 2; the kernel surfaces its observed maximum via the breakdown
    // indirectly — recompute through a fresh query and the counters.
    assert!(server.counters().messages_cleaned > 0);
}
