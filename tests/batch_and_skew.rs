//! Integration: multi-query batches and skewed fleets, spanning the
//! workload generator, the G-Grid server, and the baselines.

use std::sync::Arc;

use baselines::VTree;
use ggrid::api::MovingObjectIndex;
use ggrid::prelude::*;
use roadnet::gen;
use workload::moto::{Moto, MotoConfig, Placement};

fn hotspot_fleet(graph: &Arc<roadnet::Graph>, n: usize) -> Moto {
    Moto::new(
        graph.clone(),
        &MotoConfig {
            num_objects: n,
            update_period_ms: 200,
            seed: 21,
            placement: Placement::Hotspot {
                centers: 2,
                radius_hops: 2,
            },
            ..Default::default()
        },
    )
}

#[test]
fn batch_queries_agree_with_serial_on_live_workload() {
    let graph = Arc::new(gen::grid_city(&gen::GridCityParams {
        rows: 12,
        cols: 12,
        seed: 4,
        ..Default::default()
    }));
    let mut batch_server = GGridServer::new((*graph).clone(), GGridConfig::default());
    let mut serial_server = GGridServer::new((*graph).clone(), GGridConfig::default());

    let mut fleet = hotspot_fleet(&graph, 60);
    for m in fleet.advance_to(Timestamp(1000)) {
        batch_server.handle_update(m.object, m.position, m.time);
        serial_server.handle_update(m.object, m.position, m.time);
    }

    let queries: Vec<(EdgePosition, usize)> = (0..5u32)
        .map(|i| {
            (
                EdgePosition::at_source(roadnet::EdgeId(i * 31 % graph.num_edges() as u32)),
                3,
            )
        })
        .collect();

    let batch = batch_server.knn_batch(&queries, Timestamp(1100));
    for (i, &(q, k)) in queries.iter().enumerate() {
        let serial = serial_server.knn(q, k, Timestamp(1100));
        assert_eq!(batch.answers[i], serial, "query {i} diverges");
    }
}

#[test]
fn hotspot_fleet_exact_against_vtree() {
    let graph = Arc::new(gen::grid_city(&gen::GridCityParams {
        rows: 10,
        cols: 10,
        seed: 9,
        ..Default::default()
    }));
    let mut ggrid = GGridServer::new((*graph).clone(), GGridConfig::default());
    let mut vtree = VTree::new((*graph).clone(), 16, 10_000);

    let mut fleet = hotspot_fleet(&graph, 40);
    for m in fleet.advance_to(Timestamp(2000)) {
        ggrid.handle_update(m.object, m.position, m.time);
        vtree.handle_update(m.object, m.position, m.time);
    }

    for i in 0..6u32 {
        let q = EdgePosition::at_source(roadnet::EdgeId(i * 17 % graph.num_edges() as u32));
        let a: Vec<u64> = GGridServer::knn(&mut ggrid, q, 5, Timestamp(2100))
            .iter()
            .map(|&(_, d)| d)
            .collect();
        let b: Vec<u64> = vtree
            .knn(q, 5, Timestamp(2100))
            .iter()
            .map(|&(_, d)| d)
            .collect();
        assert_eq!(a, b, "hotspot query {i} diverges");
    }
}

#[test]
fn hotspot_queries_touch_fewer_cells_than_scattered_backlog() {
    // The lazy index's sweet spot: a clustered fleet concentrates messages
    // into few cells, so a query inside the hotspot cleans a small region
    // densely rather than a wide region sparsely.
    let graph = Arc::new(gen::grid_city(&gen::GridCityParams {
        rows: 16,
        cols: 16,
        seed: 14,
        ..Default::default()
    }));
    let mut server = GGridServer::new((*graph).clone(), GGridConfig::default());
    let mut fleet = hotspot_fleet(&graph, 120);
    let msgs = fleet.advance_to(Timestamp(1000));
    let hot_edge = msgs[0].position.edge;
    for m in msgs {
        server.handle_update(m.object, m.position, m.time);
    }
    // Query inside the hotspot: plenty of candidates nearby.
    server.knn(EdgePosition::at_source(hot_edge), 8, Timestamp(1100));
    let hot_cells = server.last_breakdown().cells_cleaned;
    assert!(
        hot_cells < server.grid().num_cells() / 2,
        "hotspot query cleaned {hot_cells} of {} cells",
        server.grid().num_cells()
    );
}
