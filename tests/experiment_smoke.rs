//! Smoke test: every experiment module runs end-to-end on a miniature
//! configuration and produces well-formed tables and CSVs.

use ggrid_bench::experiments::{
    ablation, fig10_scalability, fig4_tuning, fig5_datasets, fig6_index_size, fig7_vary_k,
    fig8_vary_objects, fig9_vary_freq, sharding, table2_datasets, ExpConfig,
};

fn mini() -> ExpConfig {
    ExpConfig {
        scale: 4000,
        objects: 80,
        queries: 2,
        out_dir: std::env::temp_dir().join("ggrid_smoke_results"),
        ..ExpConfig::quick()
    }
}

#[test]
fn table2_smoke() {
    let t = table2_datasets::run(&mini());
    assert!(!t.rows.is_empty());
    assert!(t.render().contains("NY"));
}

#[test]
fn fig5_smoke_and_csv() {
    let cfg = mini();
    let t = fig5_datasets::run(&cfg);
    t.write_csv(&cfg.out_dir, "fig5_smoke").unwrap();
    let text = std::fs::read_to_string(cfg.out_dir.join("fig5_smoke.csv")).unwrap();
    assert!(text.lines().count() >= 2, "csv must have header + rows");
}

#[test]
fn fig4c_smoke() {
    let t = fig4_tuning::run_c(&mini());
    assert_eq!(t.rows.len(), 6);
}

#[test]
fn fig6_smoke() {
    let t = fig6_index_size::run(&mini());
    assert!(!t.rows.is_empty());
}

#[test]
fn fig7_smoke() {
    let ts = fig7_vary_k::run(&mini());
    assert!(!ts.is_empty());
}

#[test]
fn fig8_smoke() {
    let t = fig8_vary_objects::run(&mini());
    assert!(!t.rows.is_empty());
}

#[test]
fn fig9_smoke() {
    let t = fig9_vary_freq::run(&mini());
    assert!(!t.rows.is_empty());
}

#[test]
fn fig10_smoke() {
    let a = fig10_scalability::run_time_throughput(&mini());
    let b = fig10_scalability::run_transfers(&mini());
    assert!(!a.rows.is_empty());
    assert!(!b.rows.is_empty());
}

#[test]
fn ablation_smoke() {
    let t = ablation::run(&mini());
    assert_eq!(t.rows.len(), 4);
}

#[test]
fn sharding_smoke() {
    let cfg = mini();
    let t = sharding::run(&cfg);
    assert_eq!(t.rows.len(), 14, "2 variants x 7 (D, rebalance) points");
    let json = std::fs::read_to_string(cfg.out_dir.join("BENCH_7.json")).unwrap();
    assert!(json.contains("\"bench\": \"sharding\""));
    assert!(json.contains("\"efficiency_d4_uniform\""));
}
