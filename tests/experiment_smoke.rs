//! Smoke test: every experiment module runs end-to-end on a miniature
//! configuration and produces well-formed tables and CSVs.

use ggrid_bench::experiments::{
    ablation, fig10_scalability, fig4_tuning, fig5_datasets, fig6_index_size, fig7_vary_k,
    fig8_vary_objects, fig9_vary_freq, sharding, table2_datasets, ExpConfig,
};

fn mini() -> ExpConfig {
    ExpConfig {
        scale: 4000,
        objects: 80,
        queries: 2,
        out_dir: std::env::temp_dir().join("ggrid_smoke_results"),
        ..ExpConfig::quick()
    }
}

#[test]
fn table2_smoke() {
    let t = table2_datasets::run(&mini());
    assert!(!t.rows.is_empty());
    assert!(t.render().contains("NY"));
}

#[test]
fn fig5_smoke_and_csv() {
    let cfg = mini();
    let t = fig5_datasets::run(&cfg);
    t.write_csv(&cfg.out_dir, "fig5_smoke").unwrap();
    let text = std::fs::read_to_string(cfg.out_dir.join("fig5_smoke.csv")).unwrap();
    assert!(text.lines().count() >= 2, "csv must have header + rows");
}

#[test]
fn fig4c_smoke() {
    let t = fig4_tuning::run_c(&mini());
    assert_eq!(t.rows.len(), 6);
}

#[test]
fn fig6_smoke() {
    let t = fig6_index_size::run(&mini());
    assert!(!t.rows.is_empty());
}

#[test]
fn fig7_smoke() {
    let ts = fig7_vary_k::run(&mini());
    assert!(!ts.is_empty());
}

#[test]
fn fig8_smoke() {
    let t = fig8_vary_objects::run(&mini());
    assert!(!t.rows.is_empty());
}

#[test]
fn fig9_smoke() {
    let t = fig9_vary_freq::run(&mini());
    assert!(!t.rows.is_empty());
}

#[test]
fn fig10_smoke() {
    let a = fig10_scalability::run_time_throughput(&mini());
    let b = fig10_scalability::run_transfers(&mini());
    assert!(!a.rows.is_empty());
    assert!(!b.rows.is_empty());
}

#[test]
fn ablation_smoke() {
    let t = ablation::run(&mini());
    assert_eq!(t.rows.len(), 4);
}

/// Minimal recursive-descent JSON well-formedness check that also
/// collects every object key it passes. The bench crate deliberately has
/// no serde dependency — the BENCH files are hand-formatted — so this
/// guards against a typo (trailing comma, unbalanced brace, unquoted
/// key) silently shipping a file downstream tooling can't read.
mod json {
    pub fn keys(text: &str) -> Result<Vec<String>, String> {
        let b = text.as_bytes();
        let mut keys = Vec::new();
        let mut i = 0;
        value(b, &mut i, &mut keys)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing bytes at offset {i}"));
        }
        Ok(keys)
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && b[*i].is_ascii_whitespace() {
            *i += 1;
        }
    }

    fn value(b: &[u8], i: &mut usize, keys: &mut Vec<String>) -> Result<(), String> {
        skip_ws(b, i);
        match b.get(*i) {
            Some(b'{') => object(b, i, keys),
            Some(b'[') => array(b, i, keys),
            Some(b'"') => string(b, i).map(|_| ()),
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                while *i < b.len()
                    && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    *i += 1;
                }
                Ok(())
            }
            Some(_) => {
                for lit in ["true", "false", "null"] {
                    if b[*i..].starts_with(lit.as_bytes()) {
                        *i += lit.len();
                        return Ok(());
                    }
                }
                Err(format!("unexpected byte at offset {i}", i = *i))
            }
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(b: &[u8], i: &mut usize, keys: &mut Vec<String>) -> Result<(), String> {
        *i += 1; // {
        skip_ws(b, i);
        if b.get(*i) == Some(&b'}') {
            *i += 1;
            return Ok(());
        }
        loop {
            skip_ws(b, i);
            keys.push(string(b, i)?);
            skip_ws(b, i);
            if b.get(*i) != Some(&b':') {
                return Err(format!("expected ':' at offset {i}", i = *i));
            }
            *i += 1;
            value(b, i, keys)?;
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b'}') => {
                    *i += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or '}}' at offset {i}", i = *i)),
            }
        }
    }

    fn array(b: &[u8], i: &mut usize, keys: &mut Vec<String>) -> Result<(), String> {
        *i += 1; // [
        skip_ws(b, i);
        if b.get(*i) == Some(&b']') {
            *i += 1;
            return Ok(());
        }
        loop {
            value(b, i, keys)?;
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b']') => {
                    *i += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or ']' at offset {i}", i = *i)),
            }
        }
    }

    fn string(b: &[u8], i: &mut usize) -> Result<String, String> {
        if b.get(*i) != Some(&b'"') {
            return Err(format!("expected '\"' at offset {i}", i = *i));
        }
        let start = *i + 1;
        *i += 1;
        while *i < b.len() {
            match b[*i] {
                b'\\' => *i += 2,
                b'"' => {
                    let s = String::from_utf8_lossy(&b[start..*i]).into_owned();
                    *i += 1;
                    return Ok(s);
                }
                _ => *i += 1,
            }
        }
        Err("unterminated string".into())
    }
}

/// Every committed BENCH_*.json must parse and carry modeled-latency
/// keys — the contract downstream dashboards rely on.
#[test]
fn bench_json_files_parse_with_modeled_keys() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        seen += 1;
        let text = std::fs::read_to_string(&path).unwrap();
        let keys = json::keys(&text).unwrap_or_else(|e| panic!("{name}: malformed JSON: {e}"));
        assert!(
            keys.iter().any(|k| k.contains("modeled") || k.ends_with("_ns")),
            "{name}: no modeled-time key (expected a key containing \"modeled\" or ending \"_ns\"); keys: {keys:?}"
        );
        assert!(
            keys.iter().any(|k| k == "bench"),
            "{name}: missing \"bench\" identity key"
        );
    }
    assert!(
        seen >= 8,
        "expected the committed BENCH files, found {seen}"
    );
}

#[test]
fn sharding_smoke() {
    let cfg = mini();
    let t = sharding::run(&cfg);
    assert_eq!(t.rows.len(), 14, "2 variants x 7 (D, rebalance) points");
    let json = std::fs::read_to_string(cfg.out_dir.join("BENCH_7.json")).unwrap();
    assert!(json.contains("\"bench\": \"sharding\""));
    assert!(json.contains("\"efficiency_d4_uniform\""));
}
