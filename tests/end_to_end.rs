//! End-to-end integration: the full pipeline — generator → messages →
//! lazy caching → GPU cleaning → kNN — answers exactly, across scenario
//! shapes.

use std::sync::Arc;

use ggrid::prelude::*;
use roadnet::gen;
use workload::moto::MotoConfig;
use workload::scenario::{run_scenario, ScenarioConfig};

fn scenario(objects: usize, period_ms: u64, queries: usize, k: usize, seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        moto: MotoConfig {
            num_objects: objects,
            update_period_ms: period_ms,
            seed,
            ..Default::default()
        },
        k,
        query_interval_ms: 500,
        num_queries: queries,
        warmup_ms: period_ms + 50,
        query_seed: seed ^ 0xFEED,
        buffered_ingest: false,
    }
}

#[test]
fn ggrid_exact_on_moving_workload() {
    let graph = Arc::new(gen::grid_city(&gen::GridCityParams {
        rows: 12,
        cols: 12,
        seed: 99,
        ..Default::default()
    }));
    let mut server = GGridServer::new((*graph).clone(), GGridConfig::default());
    let report = run_scenario(
        &graph,
        &mut server,
        &scenario(80, 250, 8, 5, 1),
        10_000,
        true,
    );
    assert_eq!(report.accuracy(), 1.0, "G-Grid must answer exactly");
    assert!(report.messages > 100);
}

#[test]
fn ggrid_exact_across_k_values() {
    let graph = Arc::new(gen::toy(55));
    for k in [1usize, 2, 7, 20] {
        let mut server = GGridServer::new(
            (*graph).clone(),
            GGridConfig {
                eta: 4,
                ..Default::default()
            },
        );
        let report = run_scenario(
            &graph,
            &mut server,
            &scenario(40, 200, 6, k, k as u64),
            10_000,
            true,
        );
        assert_eq!(report.accuracy(), 1.0, "inexact at k={k}");
    }
}

#[test]
fn ggrid_exact_with_tiny_cells_and_buckets() {
    // Degenerate tuning stresses virtual vertices, bucket chains, and
    // multi-round expansion.
    let graph = Arc::new(gen::toy(7));
    let mut server = GGridServer::new(
        (*graph).clone(),
        GGridConfig {
            cell_capacity: 1,
            vertex_capacity: 1,
            bucket_capacity: 2,
            eta: 2,
            rho: 1.1,
            ..Default::default()
        },
    );
    let report = run_scenario(
        &graph,
        &mut server,
        &scenario(25, 150, 6, 4, 9),
        10_000,
        true,
    );
    assert_eq!(report.accuracy(), 1.0);
}

#[test]
fn repeated_scenarios_are_deterministic_in_answers() {
    let graph = Arc::new(gen::toy(31));
    let run = || {
        let mut server = GGridServer::new(
            (*graph).clone(),
            GGridConfig {
                eta: 4,
                ..Default::default()
            },
        );
        run_scenario(
            &graph,
            &mut server,
            &scenario(30, 200, 5, 3, 4),
            10_000,
            false,
        )
        .answers
    };
    assert_eq!(run(), run());
}

#[test]
fn backlog_shrinks_only_where_queried() {
    // Lazy semantics: after a query, only cells near the query were
    // consolidated; remote cells keep their full backlog.
    let graph = Arc::new(gen::grid_city(&gen::GridCityParams {
        rows: 16,
        cols: 16,
        seed: 3,
        ..Default::default()
    }));
    let mut server = GGridServer::new((*graph).clone(), GGridConfig::default());
    for round in 0..20u64 {
        for o in 0..100u64 {
            let e = roadnet::EdgeId(((o * 13) % graph.num_edges() as u64) as u32);
            server.handle_update(
                ObjectId(o),
                EdgePosition::at_source(e),
                Timestamp(100 + round),
            );
        }
    }
    let before = server.cached_messages();
    server.knn(
        EdgePosition::at_source(roadnet::EdgeId(0)),
        2,
        Timestamp(200),
    );
    let after = server.cached_messages();
    assert!(after < before, "query must consolidate touched cells");
    assert!(
        server.last_breakdown().cells_cleaned < server.grid().num_cells(),
        "lazy cleaning must not touch every cell"
    );
}

#[test]
fn device_ledger_grows_with_queries() {
    let graph = Arc::new(gen::toy(13));
    let mut server = GGridServer::new(
        (*graph).clone(),
        GGridConfig {
            eta: 4,
            ..Default::default()
        },
    );
    for o in 0..30u64 {
        let e = roadnet::EdgeId((o % graph.num_edges() as u64) as u32);
        server.handle_update(ObjectId(o), EdgePosition::at_source(e), Timestamp(100));
    }
    let c0 = ggrid::api::MovingObjectIndex::sim_costs(&server);
    server.knn(
        EdgePosition::at_source(roadnet::EdgeId(1)),
        4,
        Timestamp(150),
    );
    let c1 = ggrid::api::MovingObjectIndex::sim_costs(&server);
    let delta = c1.since(&c0);
    assert!(
        delta.h2d_bytes > 0,
        "query must ship messages to the device"
    );
    assert!(delta.gpu_time > gpu_sim::SimNanos::ZERO);
}
