//! Cross-index agreement: all four indexes and the brute-force reference
//! must return identical kNN *distances* on identical inputs, across
//! seeds, graphs, and parameters. This is the strongest correctness net in
//! the workspace — every index implements a completely different search.

use std::sync::Arc;

use baselines::{Road, VTree, VTreeGpu};
use ggrid::api::MovingObjectIndex;
use ggrid::message::{ObjectId, Timestamp};
use ggrid::{GGridConfig, GGridServer};
use roadnet::dijkstra::reference_knn;
use roadnet::gen;
use roadnet::graph::Graph;
use roadnet::EdgePosition;

fn indexes(graph: &Graph, leaf_cap: usize) -> Vec<Box<dyn MovingObjectIndex>> {
    vec![
        Box::new(GGridServer::new(
            graph.clone(),
            GGridConfig {
                eta: 4,
                ..Default::default()
            },
        )),
        Box::new(VTree::new(graph.clone(), leaf_cap, 10_000)),
        Box::new(
            VTreeGpu::new(
                graph.clone(),
                leaf_cap,
                10_000,
                gpu_sim::Device::quadro_p2000(),
            )
            .expect("test graph fits the device"),
        ),
        Box::new(Road::new(graph.clone(), leaf_cap, 10_000)),
    ]
}

fn scatter(graph: &Graph, n: u64, seed: u64) -> Vec<(u64, EdgePosition)> {
    (0..n)
        .map(|i| {
            let mix = i.wrapping_mul(0x9e3779b97f4a7c15) ^ seed;
            let e = roadnet::EdgeId((mix % graph.num_edges() as u64) as u32);
            let off = (mix >> 32) as u32 % (graph.edge(e).weight + 1);
            (i, EdgePosition::new(e, off))
        })
        .collect()
}

fn check_graph(graph: Graph, seed: u64) {
    let graph = Arc::new(graph);
    let objects = scatter(&graph, 25, seed);
    let mut idxs = indexes(&graph, 8);
    for idx in idxs.iter_mut() {
        for &(o, p) in &objects {
            idx.handle_update(ObjectId(o), p, Timestamp(100 + o));
        }
    }
    let now = Timestamp(1_000);
    for qseed in 0..6u64 {
        let mix = qseed.wrapping_mul(0x2545F4914F6CDD1D) ^ seed;
        let qe = roadnet::EdgeId((mix % graph.num_edges() as u64) as u32);
        let qoff = (mix >> 40) as u32 % (graph.edge(qe).weight + 1);
        let q = EdgePosition::new(qe, qoff);
        for k in [1usize, 3, 10] {
            let want: Vec<u64> = reference_knn(&graph, q, &objects, k)
                .iter()
                .map(|&(_, d)| d)
                .collect();
            for idx in idxs.iter_mut() {
                let got: Vec<u64> = idx.knn(q, k, now).iter().map(|&(_, d)| d).collect();
                assert_eq!(
                    got,
                    want,
                    "{} diverges from reference (seed={seed}, q={q:?}, k={k})",
                    idx.name()
                );
            }
        }
    }
}

#[test]
fn agreement_on_toy_graphs() {
    for seed in [1u64, 2, 3] {
        check_graph(gen::toy(seed), seed);
    }
}

#[test]
fn agreement_on_larger_city() {
    check_graph(
        gen::grid_city(&gen::GridCityParams {
            rows: 14,
            cols: 14,
            edge_ratio: 2.7,
            seed: 77,
            ..Default::default()
        }),
        77,
    );
}

#[test]
fn agreement_on_sparse_network() {
    // Near-tree network: long detours stress the unresolved-vertex
    // refinement and the region skipping.
    check_graph(
        gen::grid_city(&gen::GridCityParams {
            rows: 12,
            cols: 12,
            edge_ratio: 2.05,
            seed: 13,
            ..Default::default()
        }),
        13,
    );
}

#[test]
fn agreement_after_object_moves() {
    let graph = Arc::new(gen::toy(21));
    let mut idxs = indexes(&graph, 8);
    // Every object moves three times; indexes must track the final state.
    for round in 0..3u64 {
        for o in 0..15u64 {
            let mix = (o * 31 + round * 7) % graph.num_edges() as u64;
            let p = EdgePosition::at_source(roadnet::EdgeId(mix as u32));
            for idx in idxs.iter_mut() {
                idx.handle_update(ObjectId(o), p, Timestamp(100 + round * 50 + o));
            }
        }
    }
    let final_positions: Vec<(u64, EdgePosition)> = (0..15u64)
        .map(|o| {
            let mix = (o * 31 + 2 * 7) % graph.num_edges() as u64;
            (o, EdgePosition::at_source(roadnet::EdgeId(mix as u32)))
        })
        .collect();
    let q = EdgePosition::at_source(roadnet::EdgeId(2));
    let want: Vec<u64> = reference_knn(&graph, q, &final_positions, 6)
        .iter()
        .map(|&(_, d)| d)
        .collect();
    for idx in idxs.iter_mut() {
        let got: Vec<u64> = idx
            .knn(q, 6, Timestamp(500))
            .iter()
            .map(|&(_, d)| d)
            .collect();
        assert_eq!(got, want, "{} stale after moves", idx.name());
    }
}
